"""Worker-count resolution: ``jobs`` option, ``REPRO_JOBS``, and auto.

``jobs`` is an *execution-only* knob: it changes how fast a run goes,
never what it computes (the dispatch layer guarantees bit-identical
results for any worker count).  Because of that it is digest-exempt
(see ``repro.api.EXECUTION_ONLY_FIELDS``) and the environment variable
is allowed to override the option value — CI can force ``REPRO_JOBS=2``
across an entire test suite, and ``repro.server`` can rebudget worker
counts per wave worker, without either forking a cache key.
"""

from __future__ import annotations

import os
from typing import Literal, Mapping

#: Environment variable overriding ``FlowOptions.jobs`` when set.
JOBS_ENV_VAR = "REPRO_JOBS"

JobsSpec = int | Literal["auto"]


def parse_jobs(text: str) -> JobsSpec:
    """Parse a ``--jobs`` / ``REPRO_JOBS`` value: ``"auto"`` or a positive int."""
    cleaned = text.strip().lower()
    if cleaned == "auto":
        return "auto"
    try:
        value = int(cleaned)
    except ValueError:
        raise ValueError(
            f"invalid jobs value {text!r}: expected a positive integer or 'auto'"
        ) from None
    if value < 1:
        raise ValueError(f"invalid jobs value {text!r}: must be >= 1")
    return value


def resolve_jobs(
    jobs: JobsSpec = 1,
    *,
    env: Mapping[str, str] | None = None,
) -> int:
    """Resolve a jobs spec to a concrete positive worker count.

    Precedence: ``REPRO_JOBS`` (when set and non-empty) overrides
    ``jobs``; ``"auto"`` resolves to the machine's CPU count.  The
    result only ever affects wall-clock, so the environment override is
    safe — it cannot change what a run computes.
    """
    source = os.environ if env is None else env
    raw = source.get(JOBS_ENV_VAR, "").strip()
    if raw:
        jobs = parse_jobs(raw)
    if jobs == "auto":
        return max(1, os.cpu_count() or 1)
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1:
        raise ValueError(f"invalid jobs value {jobs!r}: expected a positive integer or 'auto'")
    return jobs


def jobs_from_env(*, env: Mapping[str, str] | None = None) -> int:
    """Worker count from ``REPRO_JOBS`` alone (1 when unset).

    Used by call sites that have no :class:`~repro.core.flow.FlowOptions`
    in scope (e.g. the static RCK501 checker).
    """
    return resolve_jobs(1, env=env)
