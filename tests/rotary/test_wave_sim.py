"""Tests for the rotary-ring transmission-line wave simulator."""

import pytest

from repro.constants import DEFAULT_TECHNOLOGY
from repro.errors import RotaryError
from repro.geometry import Point
from repro.rotary import RotaryRing, simulate_ring, uniform_load

TECH = DEFAULT_TECHNOLOGY


@pytest.fixture(scope="module")
def ring() -> RotaryRing:
    return RotaryRing(0, Point(0, 0), half_width=250.0, period=1000.0)


class TestUnloadedRing:
    def test_period_matches_eq2(self, ring):
        """Lossless Möbius ring oscillates at T = 2 sqrt(L C)."""
        res = simulate_ring(ring, TECH)
        assert res.relative_error < 0.01

    def test_frequency_consistent(self, ring):
        res = simulate_ring(ring, TECH)
        assert res.frequency_ghz == pytest.approx(
            1000.0 / res.measured_period
        )

    def test_bigger_ring_slower(self):
        small = RotaryRing(0, Point(0, 0), 100.0, 1000.0)
        big = RotaryRing(1, Point(0, 0), 400.0, 1000.0)
        ps = simulate_ring(small, TECH).measured_period
        pb = simulate_ring(big, TECH).measured_period
        # Period scales linearly with perimeter (both L and C do).
        assert pb == pytest.approx(4.0 * ps, rel=0.02)

    def test_trace_exposed(self, ring):
        res = simulate_ring(ring, TECH)
        assert res.time.shape == res.probe.shape
        assert res.time[0] < res.time[-1]


class TestLoadedRing:
    def test_uniform_load_matches_eq2(self, ring):
        """Evenly spread load slows the wave exactly as eq. (2) predicts."""
        res = simulate_ring(ring, TECH, load_caps=uniform_load(200.0, ring))
        assert res.relative_error < 0.01
        unloaded = simulate_ring(ring, TECH)
        assert res.measured_period > unloaded.measured_period

    def test_concentrated_load_breaks_rotation(self, ring):
        """The same capacitance lumped at one point reflects the wave —
        the physical reason the paper requires dummy capacitors for
        uniform loading."""
        res = simulate_ring(
            ring, TECH, load_caps={0.3 * ring.perimeter: 200.0}
        )
        assert res.relative_error > 0.10

    def test_more_uniform_load_slower(self, ring):
        light = simulate_ring(ring, TECH, load_caps=uniform_load(50.0, ring))
        heavy = simulate_ring(ring, TECH, load_caps=uniform_load(400.0, ring))
        assert heavy.measured_period > light.measured_period
        assert heavy.relative_error < 0.02

    def test_negative_load_rejected(self, ring):
        with pytest.raises(RotaryError):
            simulate_ring(ring, TECH, load_caps={0.0: -1.0})
        with pytest.raises(RotaryError):
            uniform_load(-5.0, ring)

    def test_uniform_load_helper(self, ring):
        loads = uniform_load(128.0, ring, taps=32)
        assert len(loads) == 32
        assert sum(loads.values()) == pytest.approx(128.0)
        with pytest.raises(RotaryError):
            uniform_load(1.0, ring, taps=0)


class TestValidation:
    def test_too_few_sections(self, ring):
        with pytest.raises(RotaryError):
            simulate_ring(ring, TECH, sections=4)
