"""Extension: transient validation of eq. (2) on the ring array.

Simulates the telegrapher equations on a Möbius LC ring under the three
loading regimes and reports measured-vs-predicted periods; the timed
kernel is one full transient run.
"""

import pytest

from repro.constants import DEFAULT_TECHNOLOGY
from repro.experiments import format_table
from repro.geometry import Point
from repro.rotary import RotaryRing, simulate_ring, uniform_load

from conftest import record_artifact

_RING = RotaryRing(0, Point(0.0, 0.0), half_width=250.0, period=1000.0)


@pytest.fixture(scope="module")
def wave_rows():
    scenarios = [
        ("unloaded", None),
        ("uniform 200 fF", uniform_load(200.0, _RING)),
        ("lumped 200 fF", {0.3 * _RING.perimeter: 200.0}),
    ]
    rows = []
    for label, loads in scenarios:
        res = simulate_ring(_RING, DEFAULT_TECHNOLOGY, load_caps=loads)
        rows.append(
            {
                "loading": label,
                "measured_period_ps": res.measured_period,
                "eq2_period_ps": res.predicted_period,
                "rel_error": res.relative_error,
            }
        )
    record_artifact(
        "Extension: wave simulation",
        format_table(rows, "Extension - transient validation of eq. (2)"),
    )
    return rows


def test_bench_wave_transient(benchmark, wave_rows):
    by_label = {row["loading"]: row for row in wave_rows}
    assert by_label["unloaded"]["rel_error"] < 0.01
    assert by_label["uniform 200 fF"]["rel_error"] < 0.01
    assert by_label["lumped 200 fF"]["rel_error"] > 0.10

    def run():
        return simulate_ring(_RING, DEFAULT_TECHNOLOGY)

    result = benchmark(run)
    assert result.measured_period > 0.0
