"""Extension: local clock trees below ring tapping points (§IX).

Reports the clustering outcome and wirelength saving on the first
configured circuit; the timed kernel is the full local-tree construction.
"""

import pytest

from repro.clocktree import LocalTreeOptions, build_local_trees
from repro.experiments import format_table
from repro.timing import SequentialTiming

from conftest import record_artifact


@pytest.fixture(scope="module")
def local_tree_inputs(suite, s9234_experiment):
    exp = s9234_experiment
    timing = SequentialTiming(exp.circuit, exp.flow.positions, suite.tech)
    return exp, timing


@pytest.fixture(scope="module")
def local_tree_rows(suite, local_tree_inputs):
    exp, timing = local_tree_inputs
    rows = []
    for tol, radius in [(30.0, 80.0), (60.0, 120.0), (100.0, 200.0)]:
        lt = build_local_trees(
            exp.flow.assignment,
            exp.flow.array,
            exp.flow.positions,
            exp.flow.schedule.targets,
            timing.pairs,
            suite.tech,
            period=suite.options.period,
            slack=0.0,
            options=LocalTreeOptions(target_tolerance=tol, radius=radius),
        )
        rows.append(
            {
                "target_tol_ps": tol,
                "radius_um": radius,
                "trees": len(lt.trees),
                "clustered_ffs": lt.clustered_count,
                "clock_wl_um": lt.total_wirelength,
                "saving": lt.wirelength_saving,
            }
        )
    record_artifact(
        "Extension: local trees",
        format_table(
            rows,
            f"Extension (Section IX) - local clock trees on {exp.name}",
        ),
    )
    return rows


def test_bench_local_tree_construction(benchmark, suite, local_tree_inputs, local_tree_rows):
    for row in local_tree_rows:
        assert row["saving"] >= -1e-9  # economics test forbids regressions
    exp, timing = local_tree_inputs

    def construct():
        return build_local_trees(
            exp.flow.assignment,
            exp.flow.array,
            exp.flow.positions,
            exp.flow.schedule.targets,
            timing.pairs,
            suite.tech,
            period=suite.options.period,
            slack=0.0,
        )

    result = benchmark(construct)
    assert result.baseline_wirelength > 0.0
