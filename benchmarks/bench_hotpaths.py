"""Per-iteration hot-path guards: vectorized STA and prefactored assembly.

Times the two kernels this PR moved off the flow's critical path and
fails on regression:

* the vectorized positional timing pass vs a full scalar
  :class:`SequentialTiming` rebuild (must be >= 3x on s5378 and s9234);
* the prefactored Laplacian assembly vs per-call triplet rebuilds for
  repeated anchored ``place()`` calls.

Every measurement is appended to ``BENCH_hotpaths.json`` in the working
directory (the perf-smoke CI job archives it next to ``BENCH_ci.json``),
including an end-to-end scalar-vs-vectorized flow comparison that is
recorded but not gated here — the full-flow equivalence itself is pinned
by ``tests/core/test_flow_regression.py``.
"""

import json
import random
import time
from pathlib import Path

import pytest

from repro.constants import DEFAULT_TECHNOLOGY
from repro.core import FlowOptions, IntegratedFlow
from repro.geometry import Point
from repro.netlist import PROFILES, generate_named
from repro.placement import (
    PlacerOptions,
    PseudoNet,
    QuadraticPlacer,
    region_for_circuit,
)
from repro.timing import SequentialTiming, VectorizedTiming

TECH = DEFAULT_TECHNOLOGY
CIRCUITS = ("s5378", "s9234")
RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def hotpaths_artifact():
    yield
    Path("BENCH_hotpaths.json").write_text(json.dumps(RESULTS, indent=2) + "\n")


def _positions(circuit, seed: int) -> dict[str, Point]:
    rng = random.Random(seed)
    return {
        cell.name: Point(rng.uniform(0.0, 4000.0), rng.uniform(0.0, 4000.0))
        for cell in circuit
    }


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.parametrize("name", CIRCUITS)
def test_sta_positional_pass_speedup(name):
    """A positional re-analysis must beat a scalar rebuild by >= 3x."""
    circuit = generate_named(name)
    engine = VectorizedTiming(circuit, TECH)  # structural pass paid once here
    engine.analyze(_positions(circuit, seed=0))

    scenarios = [_positions(circuit, seed=s) for s in range(1, 4)]
    it = iter(scenarios * 4)

    scalar_s = _best_of(lambda: SequentialTiming(circuit, next(it), TECH), rounds=3)
    # Every cell moves between calls, so each analyze() is a full
    # positional pass — no dirty-set discount in this measurement.
    vector_s = _best_of(lambda: engine.analyze(next(it)), rounds=3)

    speedup = scalar_s / vector_s
    RESULTS.setdefault("sta_positional", {})[name] = {
        "scalar_rebuild_s": scalar_s,
        "vectorized_pass_s": vector_s,
        "speedup": speedup,
    }
    assert speedup >= 3.0, f"{name}: positional pass only {speedup:.1f}x vs scalar"


@pytest.mark.parametrize("name", CIRCUITS)
def test_prefactored_assembly_speedup(name):
    """Repeated anchored place() calls must profit from the cached base."""
    circuit = generate_named(name)
    region = region_for_circuit(circuit, TECH)
    anchors = _positions(circuit, seed=5)
    anchors = {c.name: anchors[c.name] for c in circuit.standard_cells}
    pseudo = [
        PseudoNet(ff.name, Point(100.0, 100.0), 0.5)
        for ff in circuit.flip_flops[:16]
    ]

    def run(assembly: str) -> float:
        placer = QuadraticPlacer(circuit, region, PlacerOptions(assembly=assembly))
        placer.place()  # warm start + (for prefactored) base build
        return _best_of(
            lambda: placer.place(
                pseudo_nets=pseudo, stability_anchors=anchors, stability_weight=0.02
            ),
            rounds=3,
        )

    triplets_s = run("triplets")
    prefactored_s = run("prefactored")
    speedup = triplets_s / prefactored_s
    RESULTS.setdefault("placer_assembly", {})[name] = {
        "triplets_s": triplets_s,
        "prefactored_s": prefactored_s,
        "speedup": speedup,
    }
    assert speedup >= 1.2, f"{name}: prefactored assembly only {speedup:.2f}x"


def test_flow_end_to_end_recorded():
    """Record (not gate) the whole-flow effect of both engines on s5378."""
    name = "s5378"
    side = PROFILES[name].ring_grid_side

    def run_flow(sta_engine: str, placer_assembly: str):
        options = FlowOptions(
            ring_grid_side=side,
            sta_engine=sta_engine,
            placer_assembly=placer_assembly,
        )
        t0 = time.perf_counter()
        result = IntegratedFlow(generate_named(name), options=options).run()
        return time.perf_counter() - t0, result

    vec_s, vec = run_flow("vectorized", "prefactored")
    sca_s, sca = run_flow("scalar", "triplets")
    RESULTS["flow_end_to_end"] = {
        name: {
            "scalar_s": sca_s,
            "vectorized_s": vec_s,
            "speedup": sca_s / vec_s,
            "iterations": len(vec.history),
        }
    }
    assert len(vec.history) == len(sca.history)
    assert vec.final.tapping_wirelength == sca.final.tapping_wirelength
