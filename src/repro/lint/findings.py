"""Typed findings emitted by the determinism/API-hygiene linter.

A :class:`LintFinding` is the source-level analogue of the design-rule
checker's :class:`~repro.analysis.diagnostics.Diagnostic`: a stable rule
code (``DET0xx`` / ``API0xx`` / ``PRG0xx``), a severity (shared with the
checker), a message, and a *physical* location — file path, 1-based line
and column — because lint findings point at code, not at design objects.

A :class:`LintReport` aggregates the findings of one run over one or
more paths and carries the same exit-code contract ``repro check``
established: 0 clean, 1 findings at/above the threshold (2 is reserved
for usage errors and produced only by the CLI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..analysis.diagnostics import Severity

__all__ = ["LintFinding", "LintReport", "Severity"]


@dataclass(frozen=True, slots=True)
class LintFinding:
    """One finding of one lint rule at one source location."""

    code: str
    rule: str
    severity: Severity
    message: str
    path: str
    line: int
    column: int
    hint: str = ""

    def format(self) -> str:
        """One-line human-readable rendering (``path:line:col`` first)."""
        text = (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.severity.name.lower()} {self.code} {self.message}"
        )
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready representation (used by the JSON reporter)."""
        doc: dict[str, Any] = {
            "code": self.code,
            "rule": self.rule,
            "severity": self.severity.name.lower(),
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
        }
        if self.hint:
            doc["hint"] = self.hint
        return doc


@dataclass(frozen=True, slots=True)
class LintReport:
    """The outcome of one linter run over a set of files."""

    findings: tuple[LintFinding, ...]
    files_checked: tuple[str, ...]
    rules_run: tuple[str, ...]
    #: ``{path: [codes]}`` of pragma suppressions that were honored.
    suppressed: dict[str, list[str]] = field(default_factory=dict)

    @property
    def counts_by_code(self) -> dict[str, int]:
        """``{code: count}`` over the findings (insertion-ordered)."""
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.code] = counts.get(f.code, 0) + 1
        return counts

    @property
    def counts_by_severity(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.findings:
            key = f.severity.name.lower()
            counts[key] = counts.get(key, 0) + 1
        return counts

    def at_least(self, severity: Severity) -> tuple[LintFinding, ...]:
        """Findings at or above ``severity``."""
        return tuple(f for f in self.findings if f.severity >= severity)

    @property
    def has_errors(self) -> bool:
        return bool(self.at_least(Severity.ERROR))

    def exit_code(self, fail_on: Severity = Severity.ERROR) -> int:
        """``repro lint`` contract: 0 clean, 1 findings >= threshold."""
        return 1 if self.at_least(fail_on) else 0
