"""Command-line interface.

Usage (also via ``python -m repro``)::

    repro run s9234 --engine flow          # integrated flow, Table IV style
    repro run s9234 --json                 # machine-readable FlowResult
    repro profile s5378                    # trace + summary JSON exports
    repro tables --circuits s9234,s5378    # regenerate Tables I-VII
    repro bench-info s38417                # circuit profile + generation
    repro sweep-rings s5378 --sides 2,3,4  # ring-count ablation (§IX)
    repro check s9234 --format sarif       # static design-rule checks
    repro lint src/ --format sarif         # determinism/API codebase lint
    repro serve --port 8765 --workers 4    # run the flow service
    repro submit s9234 --wait              # submit a FlowRequest to it
    repro status job-00000001 --events     # poll / stream job progress

Every command shares one exit-code contract (:class:`ExitCode`):
0 = success / no findings at or above ``--fail-on``,
1 = findings at or above the threshold, partial tables, or a failed or
shed server job, 2 = usage or configuration error (unknown rule code,
bad severity, unreadable input or output path, unreachable server).
"""

from __future__ import annotations

import argparse
import enum
import json
import sys
from typing import Any, Callable, Mapping

from .api import TablesRequest, flow_options, run_flow
from .constants import DEFAULT_TECHNOLOGY, frequency_ghz
from .core import FlowOptions, sweep_ring_count
from .netlist import ALL_PROFILES, PROFILE_ORDER, generate_named


class ExitCode(enum.IntEnum):
    """The one process exit contract every subcommand maps onto."""

    OK = 0
    #: Findings at/above the failure threshold (check/lint), partial
    #: tables (some circuit failed), or a failed/shed server job.
    FINDINGS = 1
    PARTIAL = 1  # alias: same exit code, tables/server wording
    #: Usage or configuration error.
    USAGE = 2


def render_report(
    report: Any,
    renderers: Mapping[str, Callable[[Any], str]],
    *,
    fmt: str = "text",
    output: str = "",
    sarif_path: str = "",
) -> None:
    """Shared check/lint report output: stdout or file, optional SARIF.

    ``renderers`` maps format name (``text``/``json``/``sarif``) to a
    function of the report; ``repro check`` and ``repro lint`` pass
    their respective modules' renderers.
    """
    rendered = renderers[fmt](report)
    if output:
        with open(output, "w") as fh:
            fh.write(rendered + "\n")
        print(f"wrote {output}")
    else:
        print(rendered)
    if sarif_path and fmt != "sarif":
        with open(sarif_path, "w") as fh:
            fh.write(renderers["sarif"](report) + "\n")
        print(f"wrote {sarif_path}")


def _add_common_flow_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=["flow", "ilp"],
        default="flow",
        help="assignment engine: Section V network flow or Section VI ILP",
    )
    parser.add_argument(
        "--iterations", type=int, default=5, help="max stage 3-6 iterations"
    )
    parser.add_argument(
        "--period", type=float, default=1000.0, help="clock period (ps)"
    )
    parser.add_argument(
        "--net-weighting",
        choices=["none", "critical"],
        default="none",
        help="up-weight nets on critical sequential pairs during "
        "incremental placement",
    )
    parser.add_argument(
        "--critical-k",
        type=int,
        default=10,
        help="critical pairs extracted per iteration (with "
        "--net-weighting critical)",
    )
    parser.add_argument(
        "--critical-weight",
        type=float,
        default=3.0,
        help="spring weight multiplier for nets on critical paths",
    )
    parser.add_argument(
        "--jobs",
        type=_parse_jobs_arg,
        default=1,
        metavar="N|auto",
        help="intra-run worker count for the chunked hot loops "
        "(execution-only: results are bit-identical at any value; "
        "REPRO_JOBS overrides)",
    )


def _parse_jobs_arg(text: str) -> int | str:
    from .parallel import parse_jobs

    try:
        return parse_jobs(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _options_from_args(args: argparse.Namespace) -> FlowOptions:
    """FlowOptions for a named benchmark from the common CLI flags."""
    return flow_options(
        args.circuit,
        assignment=args.engine,
        max_iterations=args.iterations,
        period=args.period,
        net_weighting=args.net_weighting,
        critical_pairs_k=args.critical_k,
        critical_weight=args.critical_weight,
        jobs=args.jobs,
    )


def cmd_run(args: argparse.Namespace) -> int:
    circuit = generate_named(args.circuit)
    result = run_flow(circuit, options=_options_from_args(args))
    if args.save:
        from .io import save_design

        save_design(result, args.save)
        print(f"design saved to {args.save}")
    if args.json:
        print(json.dumps(result.to_dict(), indent=1, sort_keys=True))
        return 0
    print(f"{args.circuit}: {len(circuit.flip_flops)} flip-flops, "
          f"{result.array.num_rings} rings at "
          f"{frequency_ghz(args.period):.2f} GHz ({args.engine} engine)")
    print(f"  slack available {result.slack_available:.1f} ps, "
          f"guaranteed {result.slack_guaranteed:.1f} ps")
    print(f"  base : tap WL {result.base.tapping_wirelength:10.0f} um   "
          f"AFD {result.base.average_flipflop_distance:7.1f} um")
    print(f"  final: tap WL {result.final.tapping_wirelength:10.0f} um   "
          f"AFD {result.final.average_flipflop_distance:7.1f} um   "
          f"({result.tapping_improvement:+.1%})")
    print(f"  signal WL {result.final.signal_wirelength:.0f} um "
          f"({result.signal_penalty:+.2%}), max ring load "
          f"{result.final.max_load_capacitance:.1f} fF")
    print(f"  {len(result.history)} iterations; CPU stages "
          f"{result.seconds_algorithm:.1f} s, placer {result.seconds_placer:.1f} s")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from .analysis import (
        CheckConfig,
        DesignContext,
        Severity,
        parse_severity_overrides,
        render_json,
        render_sarif,
        render_text,
        run_checks,
    )

    config = CheckConfig(
        enabled=tuple(args.enable or ()),
        disabled=tuple(args.disable or ()),
        severity_overrides=parse_severity_overrides(args.severity or ()),
        fail_on=Severity.parse(args.fail_on),
    )
    if args.bench:
        from .netlist import read_bench

        # Parse without validating: the checker reports broken netlists
        # as RCK1xx diagnostics instead of a parse-time exception.
        circuit = read_bench(args.bench, validate=False)
        ctx = DesignContext(name=circuit.name, circuit=circuit, period=args.period)
    else:
        circuit = generate_named(args.circuit)
        if args.netlist_only:
            ctx = DesignContext(
                name=circuit.name, circuit=circuit, period=args.period
            )
        else:
            result = run_flow(circuit, options=_options_from_args(args))
            ctx = DesignContext.from_flow(circuit, result)

    report = run_checks(ctx, config)
    render_report(
        report,
        {"text": render_text, "json": render_json, "sarif": render_sarif},
        fmt=args.format,
        output=args.output,
        sarif_path=args.sarif,
    )
    return ExitCode(report.exit_code(config.fail_on))


def cmd_lint(args: argparse.Namespace) -> int:
    from .errors import CheckError
    from .lint import (
        LintConfig,
        Severity,
        lint_paths,
        render_json,
        render_sarif,
        render_text,
    )

    overrides: dict[str, Severity] = {}
    for item in args.severity or ():
        code, sep, level = item.partition("=")
        if not sep:
            raise CheckError(
                f"--severity expects CODE=LEVEL, got {item!r}"
            )
        overrides[code.strip()] = Severity.parse(level.strip())
    config = LintConfig(
        enabled=tuple(args.enable or ()),
        disabled=tuple(args.disable or ()),
        severity_overrides=overrides,
        fail_on=Severity.parse(args.fail_on),
    )
    report = lint_paths(args.paths, config)
    render_report(
        report,
        {"text": render_text, "json": render_json, "sarif": render_sarif},
        fmt=args.format,
        output=args.output,
        sarif_path=args.sarif,
    )
    return ExitCode(report.exit_code(config.fail_on))


def cmd_tables(args: argparse.Namespace) -> int:
    from .api import run_tables
    from .experiments import format_table

    if args.resume and not args.checkpoint_dir:
        print("repro tables: --resume requires --checkpoint-dir",
              file=sys.stderr)
        return ExitCode.USAGE

    circuits = (
        tuple(c.strip() for c in args.circuits.split(",") if c.strip())
        if args.circuits
        else tuple(PROFILE_ORDER)
    )
    run = run_tables(TablesRequest(
        circuits=circuits,
        parallel=args.parallel,
        timeout=args.timeout or None,
        max_retries=args.max_retries,
        retry_backoff=args.retry_backoff,
        checkpoint_dir=args.checkpoint_dir or None,
        resume=args.resume,
        ilp_time_limit=args.ilp_time_limit,
    ))
    titles = {
        "table1": "Table I",
        "table2": "Table II",
        "table3": "Table III",
        "table4": "Table IV",
        "table5": "Table V",
        "table6": "Table VI",
        "table7": "Table VII",
    }
    for key, rows in run.tables.items():
        print(format_table(rows, titles[key], markdown=args.markdown))
        print()
    if run.report is not None:
        r = run.report
        print(f"parallel run: {len(r.completed)} computed, "
              f"{len(r.resumed)} resumed from checkpoints, "
              f"{len(r.failed)} failed tasks "
              f"({r.retries} retries, {r.timeouts} timeouts, "
              f"{r.crashes} crashes) in {r.seconds:.1f} s")
    if run.stale_checkpoints:
        print(f"repro tables: {run.stale_checkpoints} stale checkpoint "
              f"artifact(s) ignored (written under a different "
              f"options/technology digest)", file=sys.stderr)
    if run.failures:
        for name, reason in sorted(run.failures.items()):
            print(f"repro tables: {name} failed: {reason}", file=sys.stderr)
        return ExitCode.PARTIAL
    return ExitCode.OK


def cmd_serve(args: argparse.Namespace) -> int:
    from .obs import TraceCollector
    from .server import ServerOptions, serve

    options = ServerOptions(
        workers=args.workers,
        max_queue_depth=args.queue_depth,
        cache_capacity=args.cache_capacity,
        default_deadline_seconds=args.deadline or None,
        task_timeout_seconds=args.task_timeout or None,
        max_retries=args.max_retries,
        retry_backoff_seconds=args.retry_backoff,
        execution="inline" if args.inline else "process",
        intra_jobs=args.intra_jobs,
    )
    print(f"repro serve: listening on http://{args.host}:{args.port} "
          f"({options.workers} workers, queue depth "
          f"{options.max_queue_depth}, {options.execution} execution)")
    serve(args.host, args.port, options=options, collector=TraceCollector())
    return ExitCode.OK


def _request_from_args(args: argparse.Namespace) -> Any:
    from .api import CheckRequest, FlowRequest

    if args.kind == "tables":
        circuits = tuple(
            c.strip() for c in args.circuit.split(",") if c.strip()
        )
        return TablesRequest(
            circuits=circuits or None,
            deadline_seconds=args.deadline or None,
        )
    options = FlowOptions(
        max_iterations=args.iterations,
        period=args.period,
        assignment=args.engine,
    )
    if args.kind == "check":
        return CheckRequest(
            circuit=args.circuit,
            options=options,
            deadline_seconds=args.deadline or None,
        )
    return FlowRequest(
        circuit=args.circuit,
        options=options,
        deadline_seconds=args.deadline or None,
    )


def cmd_submit(args: argparse.Namespace) -> int:
    from .server import ServerClient

    client = ServerClient(args.server, timeout=args.http_timeout)
    request = _request_from_args(args)
    if args.wait:
        doc = client.submit_and_wait(request)
        if args.json:
            print(json.dumps(doc, indent=1, sort_keys=True))
            return ExitCode.OK
        cached = " (cached)" if doc.get("cached") else ""
        print(f"{args.kind} {args.circuit}: done{cached}, "
              f"digest {doc['request_digest'][:12]}")
        result = doc.get("result")
        if args.kind == "flow" and isinstance(result, dict):
            final = result["final"]
            print(f"  tap WL {final['tapping_wirelength_um']:.0f} um, "
                  f"AFD {final['average_flipflop_distance_um']:.1f} um, "
                  f"{len(result['history'])} iterations")
        return ExitCode.OK
    status = client.submit(request)
    print(f"{status.job_id} {status.state.value} "
          f"digest {status.request_digest[:12]}"
          f"{' (cached)' if status.cached else ''}")
    return ExitCode.OK


def cmd_status(args: argparse.Namespace) -> int:
    from .api import JobState
    from .server import ServerClient

    client = ServerClient(args.server, timeout=args.http_timeout)
    if args.events:
        for event in client.events(args.job_id, since=args.since):
            print(json.dumps(event, sort_keys=True))
    if args.result:
        doc = client.result(args.job_id)
        print(json.dumps(doc, indent=1, sort_keys=True))
        return ExitCode.OK
    status = client.status(args.job_id)
    if args.json:
        print(json.dumps(status.to_dict(), indent=1, sort_keys=True))
    else:
        line = (f"{status.job_id} {status.kind} {status.circuit}: "
                f"{status.state.value}"
                f"{' (cached)' if status.cached else ''}")
        if status.state.terminal:
            line += (f", queued {status.queued_seconds:.2f} s, "
                     f"ran {status.run_seconds:.2f} s, "
                     f"{status.num_events} events")
        if status.error is not None:
            line += (f" [{status.error.kind} after {status.error.attempts} "
                     f"attempt(s): {status.error.message}]")
        print(line)
    return (
        ExitCode.FINDINGS
        if status.state is JobState.FAILED
        else ExitCode.OK
    )


def cmd_bench_info(args: argparse.Namespace) -> int:
    profile = ALL_PROFILES[args.circuit]
    circuit = generate_named(args.circuit)
    stats = circuit.stats()
    print(f"{profile.name}: {stats.num_cells} cells "
          f"({stats.num_gates} gates + {stats.num_flipflops} flip-flops), "
          f"{stats.num_nets} nets, {stats.num_inputs} PIs, "
          f"{stats.num_outputs} POs")
    print(f"  paper Table II: {profile.num_cells} cells, "
          f"{profile.num_flipflops} FFs, {profile.num_nets} nets, "
          f"{profile.num_rings} rings, PL {profile.paper_path_length_um} um")
    print(f"  logic depth {profile.logic_depth} levels, seed {profile.seed}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .errors import ReproError
    from .experiments.benchagg import update_trajectory

    if not args.aggregate:
        print("repro bench: nothing to do (pass --aggregate)",
              file=sys.stderr)
        return ExitCode.USAGE
    try:
        out_path = update_trajectory(args.root, args.output or None)
    except ReproError as exc:
        print(f"repro bench: {exc}", file=sys.stderr)
        return ExitCode.USAGE
    doc = json.loads(out_path.read_text())
    benchmarks = doc.get("benchmarks", {})
    print(f"wrote {out_path} (revision {doc.get('revisions')}, "
          f"{len(benchmarks)} benchmarks)")
    for name in sorted(benchmarks):
        print(f"  {name}: {len(benchmarks[name])} metric series")
    return ExitCode.OK


def cmd_sweep_rings(args: argparse.Namespace) -> int:
    circuit = generate_named(args.circuit)
    sides = [int(s) for s in args.sides.split(",")]
    options = FlowOptions(max_iterations=args.iterations, period=args.period,
                          assignment=args.engine)
    sweep = sweep_ring_count(circuit, DEFAULT_TECHNOLOGY, options, sides)
    print(f"{args.circuit}: ring-count sweep "
          f"(clock WL = tapping stubs + ring loops)")
    print(f"{'side':>5} {'rings':>6} {'tap WL':>10} {'ring WL':>10} "
          f"{'clock WL':>10} {'max cap':>8}")
    for p in sweep.points:
        marker = " <- best" if p is sweep.best else ""
        print(f"{p.grid_side:5d} {p.num_rings:6d} "
              f"{p.tapping_wirelength:10.0f} {p.ring_wirelength:10.0f} "
              f"{p.clock_wirelength:10.0f} {p.max_load_capacitance:8.1f}"
              f"{marker}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from .obs import TraceCollector, write_chrome_trace, write_summary

    trace_path = args.trace or f"{args.circuit}.trace.json"
    summary_path = args.summary or f"{args.circuit}.summary.json"
    collector = TraceCollector()
    result = run_flow(
        args.circuit, options=_options_from_args(args), collector=collector
    )
    trace = result.trace
    assert trace is not None  # TraceCollector always records one
    write_chrome_trace(trace, trace_path)
    write_summary(trace, summary_path)
    stats = trace.aggregate()
    total_ms = sum(s.total_ms for s in stats.values())
    print(f"{args.circuit}: {len(result.history)} iterations, "
          f"{trace.num_events} events ({len(trace.spans)} spans, "
          f"{total_ms:.1f} ms inside spans)")
    width = max(len(name) for name in stats) if stats else 0
    for name in sorted(stats, key=lambda n: -stats[n].total_ms):
        s = stats[name]
        print(f"  {name:<{width}}  x{s.count:<3d} total {s.total_ms:9.2f} ms  "
              f"mean {s.mean_ms:8.2f} ms  max {s.max_ms:8.2f} ms")
    for counter in sorted(trace.counters):
        print(f"  {counter:<{width}}  = {trace.counters[counter]}")
    print(f"wrote {trace_path} (Chrome trace-event format; load in "
          f"ui.perfetto.dev) and {summary_path}")
    return 0


def cmd_render(args: argparse.Namespace) -> int:
    from .viz import render_flow_svg

    circuit = generate_named(args.circuit)
    result = run_flow(circuit, options=_options_from_args(args))
    svg = render_flow_svg(result, circuit, show_cells=args.cells)
    with open(args.output, "w") as fh:
        fh.write(svg)
    print(f"wrote {args.output} ({len(svg)} bytes)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Integrated placement and skew optimization for rotary clocking",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the integrated flow on a benchmark")
    run.add_argument("circuit", choices=sorted(ALL_PROFILES))
    run.add_argument("--save", default="", help="write the design to a JSON file")
    run.add_argument("--json", action="store_true",
                     help="print the full FlowResult as JSON instead of text")
    _add_common_flow_args(run)
    run.set_defaults(func=cmd_run)

    profile = sub.add_parser(
        "profile",
        help="run the flow with tracing and export trace + summary JSON",
        description="Run the integrated flow with the observability layer "
        "enabled, print a per-stage timing table, and write a Chrome "
        "trace-event file (loadable in ui.perfetto.dev) plus an aggregated "
        "JSON summary. Exit 0 = success, 2 = unwritable output path.",
    )
    profile.add_argument("circuit", choices=sorted(ALL_PROFILES))
    profile.add_argument(
        "--trace", default="", metavar="PATH",
        help="Chrome trace-event output (default: <circuit>.trace.json)",
    )
    profile.add_argument(
        "--summary", default="", metavar="PATH",
        help="aggregated summary output (default: <circuit>.summary.json)",
    )
    _add_common_flow_args(profile)
    profile.set_defaults(func=cmd_profile)

    check = sub.add_parser(
        "check",
        help="run the static design-rule checker (RCK diagnostics)",
        description="Statically check a design: run the flow on a named "
        "benchmark (or parse a .bench netlist) and report RCK diagnostics. "
        "Exit 0 = clean, 1 = findings at/above --fail-on, 2 = usage error.",
    )
    check.add_argument(
        "circuit", nargs="?", choices=sorted(ALL_PROFILES),
        help="bundled benchmark profile to flow and check",
    )
    check.add_argument(
        "--bench", default="",
        help="check a .bench netlist file instead of a bundled profile",
    )
    check.add_argument(
        "--netlist-only", action="store_true",
        help="skip the flow; run only the netlist-level rules",
    )
    check.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format on stdout",
    )
    check.add_argument(
        "-o", "--output", default="", help="write the report to a file"
    )
    check.add_argument(
        "--sarif", default="",
        help="additionally write a SARIF 2.1.0 report to this path",
    )
    check.add_argument(
        "--enable", action="append", metavar="CODE",
        help="restrict the run to these rule codes (repeatable)",
    )
    check.add_argument(
        "--disable", action="append", metavar="CODE",
        help="disable a rule code (repeatable)",
    )
    check.add_argument(
        "--severity", action="append", metavar="CODE=LEVEL",
        help="override a rule's severity, e.g. RCK103=error (repeatable)",
    )
    check.add_argument(
        "--fail-on", default="error", metavar="LEVEL",
        help="exit 1 when findings reach this severity (default: error)",
    )
    _add_common_flow_args(check)
    check.set_defaults(func=cmd_check)

    lint = sub.add_parser(
        "lint",
        help="lint Python sources for nondeterminism hazards (DET/API)",
        description="Run the determinism sanitizer's static pass over "
        "Python sources: DET rules flag iteration orders and global "
        "state that vary with PYTHONHASHSEED or the wall clock, API "
        "rules flag mutable defaults, swallowed exceptions, and "
        "unannotated public functions. "
        "Exit 0 = clean, 1 = findings at/above --fail-on, 2 = usage "
        "error (unknown rule code, unparseable file, missing path).",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        help="report format on stdout",
    )
    lint.add_argument(
        "-o", "--output", default="", help="write the report to a file"
    )
    lint.add_argument(
        "--sarif", default="",
        help="additionally write a SARIF 2.1.0 report to this path",
    )
    lint.add_argument(
        "--enable", action="append", metavar="CODE",
        help="restrict the run to these rule codes (repeatable)",
    )
    lint.add_argument(
        "--disable", action="append", metavar="CODE",
        help="disable a rule code (repeatable)",
    )
    lint.add_argument(
        "--severity", action="append", metavar="CODE=LEVEL",
        help="override a rule's severity, e.g. API003=error (repeatable)",
    )
    lint.add_argument(
        "--fail-on", default="error", metavar="LEVEL",
        help="exit 1 when findings reach this severity (default: error)",
    )
    lint.set_defaults(func=cmd_lint)

    tables = sub.add_parser(
        "tables",
        help="regenerate the paper's tables",
        description="Regenerate Tables I-VII. With --parallel the "
        "(circuit x engine) matrix runs over worker processes with "
        "per-task timeouts and bounded retries; with --checkpoint-dir "
        "every completed circuit is written as an atomic JSON artifact "
        "and --resume continues an interrupted suite from there. "
        "Exit 0 = all circuits completed, 1 = partial tables (some "
        "circuit failed), 2 = usage error.",
    )
    tables.add_argument("--circuits", default="", help="comma-separated subset")
    tables.add_argument("--ilp-time-limit", type=float, default=10.0)
    tables.add_argument("--markdown", action="store_true",
                        help="emit Markdown tables instead of aligned text")
    tables.add_argument(
        "--parallel", type=int, default=0, metavar="N",
        help="run the suite over N worker processes (0 = serial)",
    )
    tables.add_argument(
        "--timeout", type=float, default=0.0, metavar="SECONDS",
        help="per-task wall-clock deadline for parallel runs (0 = none)",
    )
    tables.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retries per task after crash/timeout/error (default: 2)",
    )
    tables.add_argument(
        "--retry-backoff", type=float, default=0.5, metavar="SECONDS",
        help="base of the exponential retry backoff (default: 0.5)",
    )
    tables.add_argument(
        "--checkpoint-dir", default="", metavar="DIR",
        help="write one atomic JSON checkpoint per completed circuit",
    )
    tables.add_argument(
        "--resume", action="store_true",
        help="serve completed circuits from --checkpoint-dir",
    )
    tables.set_defaults(func=cmd_tables)

    info = sub.add_parser("bench-info", help="show a benchmark profile")
    info.add_argument("circuit", choices=sorted(ALL_PROFILES))
    info.set_defaults(func=cmd_bench_info)

    bench = sub.add_parser(
        "bench",
        help="benchmark artifact tooling (baseline aggregation)",
        description="Aggregate every BENCH_*.json artifact into "
        "BENCH_trajectory.json: one numeric series per (benchmark, "
        "metric) pair, indexed by a monotonically increasing revision "
        "counter. Re-running after each benchmark crop appends one "
        "revision, building a committed baseline history.",
    )
    bench.add_argument(
        "--aggregate", action="store_true",
        help="fold the current BENCH_*.json crop into the trajectory",
    )
    bench.add_argument(
        "--root", default=".", metavar="DIR",
        help="directory scanned for BENCH_*.json (default: .)",
    )
    bench.add_argument(
        "--output", default="", metavar="FILE",
        help="trajectory path (default: <root>/BENCH_trajectory.json)",
    )
    bench.set_defaults(func=cmd_bench)

    render = sub.add_parser("render", help="render the flow result as SVG")
    render.add_argument("circuit", choices=sorted(ALL_PROFILES))
    render.add_argument("-o", "--output", default="rotary.svg")
    render.add_argument("--cells", action="store_true",
                        help="also draw combinational cells")
    _add_common_flow_args(render)
    render.set_defaults(func=cmd_render)

    sweep = sub.add_parser("sweep-rings", help="ring-count ablation (Section IX)")
    sweep.add_argument("circuit", choices=sorted(ALL_PROFILES))
    sweep.add_argument("--sides", default="2,3,4,5")
    _add_common_flow_args(sweep)
    sweep.set_defaults(func=cmd_sweep_rings)

    srv = sub.add_parser(
        "serve",
        help="run the flow service (HTTP/JSON, see DESIGN.md section 15)",
        description="Run the flow-as-a-service HTTP server: POST "
        "/v1/flows, /v1/checks and /v1/tables submit jobs onto a "
        "wave-scheduled worker pool backed by a digest-keyed result "
        "cache; GET /v1/jobs/<id> polls and /v1/jobs/<id>/events "
        "streams progress. Runs until interrupted.",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8765)
    srv.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker processes executing jobs (default: 2)",
    )
    srv.add_argument(
        "--queue-depth", type=int, default=64, metavar="N",
        help="maximum queued jobs before shedding with 503 (default: 64)",
    )
    srv.add_argument(
        "--cache-capacity", type=int, default=256, metavar="N",
        help="result-cache entries kept (LRU, default: 256)",
    )
    srv.add_argument(
        "--deadline", type=float, default=0.0, metavar="SECONDS",
        help="default per-request deadline when the request sets none",
    )
    srv.add_argument(
        "--task-timeout", type=float, default=0.0, metavar="SECONDS",
        help="per-attempt wall-clock limit in the worker pool (0 = none)",
    )
    srv.add_argument(
        "--max-retries", type=int, default=0, metavar="N",
        help="retries per job after crash/timeout/error (default: 0)",
    )
    srv.add_argument(
        "--retry-backoff", type=float, default=0.5, metavar="SECONDS",
        help="base of the exponential retry backoff (default: 0.5)",
    )
    srv.add_argument(
        "--inline", action="store_true",
        help="execute jobs in the server process (live iteration events; "
        "no crash isolation)",
    )
    srv.add_argument(
        "--intra-jobs", type=_parse_jobs_arg, default="auto",
        metavar="N|auto",
        help="intra-run worker budget applied to each job's options.jobs "
        "(auto = cores divided across --workers; execution-only, so "
        "cache keys never fork on it)",
    )
    srv.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit a request to a running flow service",
        description="Build a typed request document (FlowRequest / "
        "CheckRequest / TablesRequest) and POST it to a running "
        "'repro serve' instance. Exit 0 = submitted (or, with --wait, "
        "completed), 1 = the server shed or failed the job, 2 = "
        "unreachable server or usage error.",
    )
    submit.add_argument(
        "circuit",
        help="circuit name (comma-separated list for --kind tables)",
    )
    submit.add_argument(
        "--kind", choices=["flow", "check", "tables"], default="flow",
        help="request type (default: flow)",
    )
    submit.add_argument(
        "--server", default="http://127.0.0.1:8765", metavar="URL",
        help="base URL of the running service",
    )
    submit.add_argument(
        "--deadline", type=float, default=0.0, metavar="SECONDS",
        help="per-request deadline; past it the server sheds with 503",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job is terminal and print the result",
    )
    submit.add_argument(
        "--json", action="store_true",
        help="with --wait, print the full result document as JSON",
    )
    submit.add_argument(
        "--http-timeout", type=float, default=600.0, metavar="SECONDS",
        help="client-side socket timeout (default: 600)",
    )
    _add_common_flow_args(submit)
    submit.set_defaults(func=cmd_submit)

    status = sub.add_parser(
        "status",
        help="poll a job on a running flow service",
        description="Show a job's status document; --events streams its "
        "newline-delimited progress events until the job is terminal, "
        "--result prints the full result document. Exit 0 = job OK, "
        "1 = job FAILED, 2 = unreachable server or unknown job.",
    )
    status.add_argument("job_id", help="job id, e.g. job-00000001")
    status.add_argument(
        "--server", default="http://127.0.0.1:8765", metavar="URL",
        help="base URL of the running service",
    )
    status.add_argument(
        "--events", action="store_true",
        help="stream progress events (ndjson) until the job is terminal",
    )
    status.add_argument(
        "--since", type=int, default=0, metavar="N",
        help="with --events, resume the stream after event N",
    )
    status.add_argument(
        "--result", action="store_true",
        help="print the result document instead of the status line",
    )
    status.add_argument(
        "--json", action="store_true",
        help="print the status document as JSON",
    )
    status.add_argument(
        "--http-timeout", type=float, default=600.0, metavar="SECONDS",
        help="client-side socket timeout (default: 600)",
    )
    status.set_defaults(func=cmd_status)

    return parser


def main(argv: list[str] | None = None) -> int:
    from .errors import CheckError, NetlistError, SaturatedError, ServerError

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.func is cmd_check and not (args.circuit or args.bench):
        print("repro check: provide a bundled circuit or --bench FILE",
              file=sys.stderr)
        return ExitCode.USAGE
    try:
        return args.func(args)
    except SaturatedError as exc:
        # The server shed the request (queue full or deadline passed).
        print(f"repro {args.command}: server saturated, retry after "
              f"{exc.retry_after_seconds:g} s: {exc}", file=sys.stderr)
        return ExitCode.FINDINGS
    except ServerError as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return ExitCode.FINDINGS
    except (CheckError, NetlistError, OSError) as exc:
        if args.func is cmd_check:
            print(f"repro check: {exc}", file=sys.stderr)
            return ExitCode.USAGE
        if args.func is cmd_lint:
            print(f"repro lint: {exc}", file=sys.stderr)
            return ExitCode.USAGE
        if args.func is cmd_profile and isinstance(exc, OSError):
            print(f"repro profile: {exc}", file=sys.stderr)
            return ExitCode.USAGE
        if args.func in (cmd_submit, cmd_status) and isinstance(exc, OSError):
            # urllib's URLError is an OSError: the server is unreachable.
            print(f"repro {args.command}: cannot reach {args.server}: {exc}",
                  file=sys.stderr)
            return ExitCode.USAGE
        raise


if __name__ == "__main__":
    sys.exit(main())
