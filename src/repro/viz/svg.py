"""SVG rendering of a rotary-clocked design.

Produces a standalone SVG showing the die, the placement rows, the rotary
ring array (both lines of each differential pair), every flip-flop colored
by its assigned ring, and the tapping stubs from ring to flip-flop.
Depends only on the standard library; meant for quick visual inspection of
flow results::

    from repro.viz import render_flow_svg
    svg = render_flow_svg(flow_result, circuit)
    open("design.svg", "w").write(svg)
"""

from __future__ import annotations

from typing import Mapping
from xml.sax.saxutils import escape

from ..core.flow import FlowResult
from ..geometry import BBox, Point
from ..netlist import Circuit

#: Categorical ring colors (cycled).
_PALETTE = (
    "#4c78a8", "#f58518", "#54a24b", "#e45756", "#72b7b2",
    "#eeca3b", "#b279a2", "#ff9da6", "#9d755d", "#bab0ac",
)


class _Svg:
    def __init__(self, view: BBox, margin: float = 20.0):
        self.parts: list[str] = []
        self.view = view
        self.margin = margin

    def line(self, a: Point, b: Point, stroke: str, width: float = 1.0,
             dash: str | None = None, opacity: float = 1.0) -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self.parts.append(
            f'<line x1="{a.x:.2f}" y1="{self._y(a.y):.2f}" '
            f'x2="{b.x:.2f}" y2="{self._y(b.y):.2f}" '
            f'stroke="{stroke}" stroke-width="{width:.2f}" '
            f'stroke-opacity="{opacity:.2f}"{dash_attr}/>'
        )

    def rect(self, box: BBox, stroke: str, fill: str = "none",
             width: float = 1.0, opacity: float = 1.0) -> None:
        self.parts.append(
            f'<rect x="{box.xlo:.2f}" y="{self._y(box.yhi):.2f}" '
            f'width="{box.width:.2f}" height="{box.height:.2f}" '
            f'stroke="{stroke}" stroke-width="{width:.2f}" fill="{fill}" '
            f'opacity="{opacity:.2f}"/>'
        )

    def circle(self, center: Point, radius: float, fill: str,
               opacity: float = 1.0) -> None:
        self.parts.append(
            f'<circle cx="{center.x:.2f}" cy="{self._y(center.y):.2f}" '
            f'r="{radius:.2f}" fill="{fill}" fill-opacity="{opacity:.2f}"/>'
        )

    def text(self, at: Point, content: str, size: float = 10.0,
             fill: str = "#333333") -> None:
        self.parts.append(
            f'<text x="{at.x:.2f}" y="{self._y(at.y):.2f}" '
            f'font-size="{size:.1f}" fill="{fill}" '
            f'font-family="monospace">{escape(content)}</text>'
        )

    def _y(self, y: float) -> float:
        """Flip to SVG's top-left origin."""
        return self.view.yhi - y + self.view.ylo

    def render(self) -> str:
        m = self.margin
        v = self.view
        header = (
            '<svg xmlns="http://www.w3.org/2000/svg" '
            f'viewBox="{v.xlo - m:.2f} {v.ylo - m:.2f} '
            f'{v.width + 2 * m:.2f} {v.height + 2 * m:.2f}">'
        )
        return header + "".join(self.parts) + "</svg>"


def render_flow_svg(
    result: FlowResult,
    circuit: Circuit,
    show_cells: bool = False,
    show_rows: bool = True,
) -> str:
    """Render a :class:`FlowResult` as an SVG string."""
    die = result.array.region
    svg = _Svg(die)
    svg.rect(die, stroke="#222222", width=1.5)

    if show_rows:
        step = max(die.height / 40.0, 1.0)
        y = die.ylo + step
        while y < die.yhi:
            svg.line(Point(die.xlo, y), Point(die.xhi, y), "#dddddd", 0.4)
            y += step

    if show_cells:
        ff_names = set(result.assignment.ring_of)
        for cell in circuit.standard_cells:
            if cell.name in ff_names:
                continue
            p = result.positions.get(cell.name)
            if p is not None:
                svg.circle(p, 0.8, "#bbbbbb", opacity=0.6)

    ring_color = {
        ring.ring_id: _PALETTE[ring.ring_id % len(_PALETTE)]
        for ring in result.array
    }
    for ring in result.array:
        color = ring_color[ring.ring_id]
        svg.rect(ring.bbox, stroke=color, width=1.4)
        inner = BBox(
            ring.bbox.xlo + 2.0,
            ring.bbox.ylo + 2.0,
            ring.bbox.xhi - 2.0,
            ring.bbox.yhi - 2.0,
        )
        if inner.width > 0 and inner.height > 0:
            svg.rect(inner, stroke=color, width=0.7, opacity=0.6)
        ref = ring.corners()[0]
        svg.circle(ref, 1.6, color)  # equal-phase reference point

    for ff, sol in result.assignment.solutions.items():
        color = ring_color[result.assignment.ring_of[ff]]
        p = result.positions[ff]
        svg.line(sol.point, p, color, 0.8, dash="2,2" if sol.snaked else None)
        svg.circle(p, 1.8, color)

    svg.text(
        Point(die.xlo, die.yhi + 8.0),
        f"{result.circuit_name}: {len(result.assignment.ring_of)} FFs on "
        f"{result.array.num_rings} rings, tap WL "
        f"{result.final.tapping_wirelength:.0f} um",
    )
    return svg.render()


def render_positions_svg(
    positions: Mapping[str, Point],
    die: BBox,
    highlight: Mapping[str, str] | None = None,
) -> str:
    """Render bare cell positions (debugging aid for the placer)."""
    svg = _Svg(die)
    svg.rect(die, stroke="#222222", width=1.5)
    colors = highlight or {}
    for name, p in positions.items():
        svg.circle(p, 1.0, colors.get(name, "#4c78a8"), opacity=0.7)
    return svg.render()
