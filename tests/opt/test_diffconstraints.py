"""Tests for difference-constraint feasibility and graph-based max slack."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opt import (
    SkewConstraint,
    check_constraints,
    maximize_slack,
    solve_difference_constraints,
)


class TestFeasibility:
    def test_simple_feasible(self):
        cons = [SkewConstraint("a", "b", 5.0)]
        sched = solve_difference_constraints(["a", "b"], cons)
        assert sched is not None
        assert sched["a"] - sched["b"] <= 5.0 + 1e-9

    def test_negative_cycle_infeasible(self):
        cons = [
            SkewConstraint("a", "b", 1.0),
            SkewConstraint("b", "a", -2.0),
        ]
        assert solve_difference_constraints(["a", "b"], cons) is None

    def test_zero_cycle_feasible(self):
        cons = [
            SkewConstraint("a", "b", 1.0),
            SkewConstraint("b", "a", -1.0),
        ]
        # b - a <= -1 forces a - b >= 1; with a - b <= 1 it pins to 1.
        sched = solve_difference_constraints(["a", "b"], cons)
        assert sched is not None
        assert sched["a"] - sched["b"] == pytest.approx(1.0)

    def test_slack_tightens_bounds(self):
        cons = [SkewConstraint("a", "b", 5.0), SkewConstraint("b", "a", -3.0)]
        assert solve_difference_constraints(["a", "b"], cons, slack=1.0) is not None
        # At slack 4+ the cycle (5-M) + (-3-M) goes negative.
        assert solve_difference_constraints(["a", "b"], cons, slack=1.5) is None

    def test_no_constraints(self):
        sched = solve_difference_constraints(["a", "b"], [])
        assert sched == {"a": 0.0, "b": 0.0}


class TestMaxSlack:
    def test_two_node_cycle(self):
        cons = [SkewConstraint("a", "b", 10.0), SkewConstraint("b", "a", 6.0)]
        slack, sched = maximize_slack(["a", "b"], cons)
        assert slack == pytest.approx(8.0, abs=1e-3)
        assert not check_constraints(sched, cons, slack=slack - 1e-3)

    def test_no_constraints_unbounded(self):
        slack, sched = maximize_slack(["a"], [])
        assert math.isinf(slack)

    def test_schedule_respects_constraints(self):
        cons = [
            SkewConstraint("a", "b", 4.0),
            SkewConstraint("b", "c", 7.0),
            SkewConstraint("c", "a", 1.0),
        ]
        slack, sched = maximize_slack(["a", "b", "c"], cons)
        assert slack == pytest.approx((4 + 7 + 1) / 3, abs=1e-3)
        assert not check_constraints(sched, cons, slack=slack - 1e-3)

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_random_cycles_match_min_mean_cycle(self, data):
        """On a single directed cycle the max slack is the cycle mean."""
        n = data.draw(st.integers(2, 6))
        bounds = [data.draw(st.integers(-3, 12)) for _ in range(n)]
        nodes = [f"n{i}" for i in range(n)]
        cons = [
            SkewConstraint(nodes[i], nodes[(i + 1) % n], float(bounds[i]))
            for i in range(n)
        ]
        slack, sched = maximize_slack(nodes, cons, tolerance=1e-5)
        assert slack == pytest.approx(sum(bounds) / n, abs=1e-3)
        assert not check_constraints(sched, cons, slack=slack - 1e-3)


class TestCheckConstraints:
    def test_reports_violations(self):
        cons = [SkewConstraint("a", "b", 1.0)]
        bad = {"a": 5.0, "b": 0.0}
        assert check_constraints(bad, cons) == cons
        good = {"a": 0.0, "b": 0.0}
        assert check_constraints(good, cons) == []
