"""Ablation: measured switching activity vs the paper's alpha = 0.15.

Simulates the first configured circuit with random vectors (bit-parallel
logic simulation) and compares the measured per-net activities — and the
resulting signal power — against the paper's blanket assumption.  The
timed kernel is one full activity-extraction run.
"""

import pytest

from repro.core import signal_wirelength
from repro.experiments import format_table
from repro.netlist import simulate_activities
from repro.power import measured_signal_power_mw, signal_power_mw

from conftest import record_artifact


@pytest.fixture(scope="module")
def activity_rows(suite, s9234_experiment):
    exp = s9234_experiment
    sim = simulate_activities(exp.circuit, cycles=64, streams=64)
    blanket = signal_power_mw(
        exp.circuit,
        signal_wirelength(exp.circuit, exp.flow.positions),
        1.0,
        suite.tech,
    )
    measured = measured_signal_power_mw(
        exp.circuit, exp.flow.positions, 1.0, suite.tech, sim.activities
    )
    rows = [
        {
            "model": "paper assumption (alpha=0.15)",
            "mean_activity": suite.tech.signal_activity,
            "signal_power_mw": blanket,
        },
        {
            "model": "measured (logic simulation)",
            "mean_activity": sim.mean_activity,
            "signal_power_mw": measured,
        },
    ]
    record_artifact(
        "Ablation: switching activity",
        format_table(
            rows,
            f"Ablation - signal activity on {exp.name} "
            f"({sim.cycles} cycles x {sim.streams} streams)",
        ),
    )
    return rows, exp


def test_bench_activity_extraction(benchmark, activity_rows):
    rows, exp = activity_rows
    blanket_row, measured_row = rows
    # The measured mean must land in the same regime the paper assumes.
    assert 0.05 <= measured_row["mean_activity"] <= 0.30
    assert measured_row["signal_power_mw"] == pytest.approx(
        blanket_row["signal_power_mw"], rel=0.6
    )

    result = benchmark.pedantic(
        simulate_activities, args=(exp.circuit,),
        kwargs={"cycles": 32, "streams": 64}, rounds=3, iterations=1,
    )
    assert result.mean_activity > 0.0
