"""Setup/hold timing constraints and skew permissible ranges.

For a sequentially adjacent pair ``i -> j`` the skew ``s = t_i - t_j``
must satisfy (eqs. (6)-(7) of the paper with slack ``M``):

    long path  (setup):  s <= T - D_max^ij - t_setup - M
    short path (hold):   s >= t_hold - D_min^ij + M

The closed interval between those bounds is the *permissible range* [4];
a wider range means more tolerance to skew variation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..constants import Technology
from ..opt.diffconstraints import SkewConstraint
from .sta import PathBounds


@dataclass(frozen=True, slots=True)
class PermissibleRange:
    """Allowed skew interval ``[lo, hi]`` for one sequential pair."""

    launch: str
    capture: str
    lo: float
    hi: float

    @property
    def width(self) -> float:
        return self.hi - self.lo

    @property
    def feasible(self) -> bool:
        return self.hi >= self.lo

    def contains(self, skew: float, tol: float = 1e-9) -> bool:
        """Whether ``skew`` lies in ``[lo - tol, hi + tol]``.

        The tolerance is applied symmetrically at both boundaries so a
        skew exactly ``tol`` past either bound is still accepted, and a
        skew ``tol`` inside either bound never rejected.
        """
        return self.lo - tol <= skew <= self.hi + tol


def permissible_range(
    launch: str,
    capture: str,
    bounds: PathBounds,
    period: float,
    tech: Technology,
    slack: float = 0.0,
) -> PermissibleRange:
    """Permissible skew range of one pair at a given guaranteed slack."""
    hi = period - bounds.d_max - tech.setup_time - slack
    lo = tech.hold_time - bounds.d_min + slack
    return PermissibleRange(launch, capture, lo, hi)


def permissible_ranges(
    pairs: Mapping[tuple[str, str], PathBounds],
    period: float,
    tech: Technology,
    slack: float = 0.0,
) -> dict[tuple[str, str], PermissibleRange]:
    """Permissible ranges for every sequentially adjacent pair."""
    return {
        (i, j): permissible_range(i, j, b, period, tech, slack)
        for (i, j), b in pairs.items()
    }


def skew_constraints(
    pairs: Mapping[tuple[str, str], PathBounds],
    period: float,
    tech: Technology,
) -> list[SkewConstraint]:
    """Eqs. (6)-(7) as difference constraints parameterized by slack M.

    Long path:  t_i - t_j <= (T - D_max - setup) - 1*M
    Short path: t_j - t_i <= (D_min - hold)      - 1*M
    """
    constraints: list[SkewConstraint] = []
    for (i, j), b in pairs.items():
        constraints.append(
            SkewConstraint(i, j, period - b.d_max - tech.setup_time, 1.0)
        )
        constraints.append(SkewConstraint(j, i, b.d_min - tech.hold_time, 1.0))
    return constraints


def validate_schedule(
    schedule: Mapping[str, float],
    pairs: Mapping[tuple[str, str], PathBounds],
    period: float,
    tech: Technology,
    slack: float = 0.0,
    tol: float = 1e-6,
) -> list[str]:
    """Human-readable violations of a skew schedule (empty = clean).

    Bounds and tolerance come from :func:`permissible_range` and
    :meth:`PermissibleRange.contains`, so this check and the RCK403
    static rule agree on every boundary case.
    """
    problems: list[str] = []
    for (i, j), b in pairs.items():
        missing = [ff for ff in (i, j) if ff not in schedule]
        if missing:
            problems.append(
                f"pair {i}->{j}: no schedule entry for "
                + ", ".join(repr(ff) for ff in missing)
            )
            continue
        r = permissible_range(i, j, b, period, tech, slack)
        skew = schedule[i] - schedule[j]
        if r.contains(skew, tol):
            continue
        if skew > r.hi:
            problems.append(
                f"setup violation {i}->{j}: skew {skew:.3f} > {r.hi:.3f}"
            )
        else:
            problems.append(
                f"hold violation {i}->{j}: skew {skew:.3f} < {r.lo:.3f}"
            )
    return problems
