"""Tests for bit-parallel logic simulation and activity extraction."""

import pytest

from repro.errors import NetlistError
from repro.netlist import CellKind, Circuit, simulate_activities


def single_gate_circuit(kind: CellKind, fanin: int) -> Circuit:
    c = Circuit(f"test_{kind.value}")
    inputs = [f"i{k}" for k in range(fanin)]
    for name in inputs:
        c.add_input(name)
    c.add_gate("y", kind, inputs)
    c.add_output("y")
    return c.validate()


class TestGateBehaviour:
    @pytest.mark.parametrize(
        "kind,expected",
        [
            (CellKind.AND, 2 * 0.25 * 0.75),   # P(1)=1/4 -> toggle 2pq=0.375
            (CellKind.NAND, 2 * 0.25 * 0.75),
            (CellKind.OR, 2 * 0.25 * 0.75),    # P(1)=3/4, same toggle rate
            (CellKind.NOR, 2 * 0.25 * 0.75),
            (CellKind.XOR, 0.5),               # P(1)=1/2 -> toggle 0.5
            (CellKind.XNOR, 0.5),
        ],
    )
    def test_two_input_gate_activity(self, kind, expected):
        """Toggle rate of a gate fed by independent random inputs matches
        the analytic 2*p*(1-p)."""
        c = single_gate_circuit(kind, 2)
        res = simulate_activities(c, cycles=400, streams=64, seed=5)
        assert res.activity("y") == pytest.approx(expected, abs=0.03)

    def test_inverter_mirrors_input(self):
        c = single_gate_circuit(CellKind.NOT, 1)
        res = simulate_activities(c, cycles=200, streams=64)
        assert res.activity("y") == pytest.approx(res.activity("i0"), abs=1e-12)

    def test_buffer_mirrors_input(self):
        c = single_gate_circuit(CellKind.BUF, 1)
        res = simulate_activities(c, cycles=200, streams=64)
        assert res.activity("y") == pytest.approx(res.activity("i0"), abs=1e-12)

    def test_primary_input_activity_half(self):
        """Fresh random inputs toggle with probability 1/2."""
        c = single_gate_circuit(CellKind.BUF, 1)
        res = simulate_activities(c, cycles=400, streams=64, seed=9)
        assert res.activity("i0") == pytest.approx(0.5, abs=0.03)


class TestSequentialSimulation:
    def test_s27_runs(self, s27):
        res = simulate_activities(s27, cycles=128, streams=32)
        assert set(res.activities) >= {"G0", "G5", "G17"}
        for a in res.activities.values():
            assert 0.0 <= a <= 1.0

    def test_deterministic(self, s27):
        a = simulate_activities(s27, cycles=64, streams=32, seed=2)
        b = simulate_activities(s27, cycles=64, streams=32, seed=2)
        assert a.activities == b.activities

    def test_seed_changes_details_not_statistics(self, s27):
        a = simulate_activities(s27, cycles=256, streams=64, seed=1)
        b = simulate_activities(s27, cycles=256, streams=64, seed=2)
        assert a.activities != b.activities
        assert a.mean_activity == pytest.approx(b.mean_activity, abs=0.05)

    def test_s9234_activity_near_paper_assumption(self):
        """On the paper-scale benchmark the measured mean activity lands
        near the 0.15 the paper assumes.  (Tiny random circuits freeze —
        random Boolean networks in the ordered phase — so the check uses
        the full s9234 profile.)"""
        from repro.netlist import generate_named

        circuit = generate_named("s9234")
        res = simulate_activities(circuit, cycles=64, streams=64)
        assert 0.05 <= res.mean_activity <= 0.30

    def test_constant_feedback_settles(self):
        """A flip-flop feeding itself through a buffer holds its value."""
        c = Circuit("hold")
        c.add_dff("ff", "b")
        c.add_gate("b", CellKind.BUF, ("ff",))
        c.add_output("b")
        c.validate()
        res = simulate_activities(c, cycles=64, streams=32)
        assert res.activity("ff") == 0.0


class TestValidation:
    def test_too_few_cycles(self, s27):
        with pytest.raises(NetlistError):
            simulate_activities(s27, cycles=1)

    def test_zero_streams(self, s27):
        with pytest.raises(NetlistError):
            simulate_activities(s27, streams=0)

    def test_unknown_signal_lookup(self, s27):
        res = simulate_activities(s27, cycles=16, streams=8)
        with pytest.raises(NetlistError):
            res.activity("ghost")
        assert res.activity("ghost", default=0.15) == 0.15


class TestMeasuredPower:
    def test_measured_power_positive_and_comparable(self, tiny_circuit, tiny_placed):
        from repro.constants import DEFAULT_TECHNOLOGY
        from repro.core import signal_wirelength
        from repro.power import measured_signal_power_mw, signal_power_mw

        _, positions = tiny_placed
        activities = simulate_activities(tiny_circuit, cycles=64, streams=32).activities
        measured = measured_signal_power_mw(
            tiny_circuit, positions, 1.0, DEFAULT_TECHNOLOGY, activities
        )
        blanket = signal_power_mw(
            tiny_circuit,
            signal_wirelength(tiny_circuit, positions),
            1.0,
            DEFAULT_TECHNOLOGY,
        )
        assert measured > 0.0
        # Same order of magnitude as the paper's 0.15 assumption.
        assert 0.2 * blanket < measured < 5.0 * blanket

    def test_zero_activity_zero_power(self, tiny_circuit, tiny_placed):
        from repro.constants import DEFAULT_TECHNOLOGY
        from repro.power import measured_signal_power_mw

        _, positions = tiny_placed
        zero = {name: 0.0 for name in tiny_circuit.nets}
        assert (
            measured_signal_power_mw(
                tiny_circuit, positions, 1.0, DEFAULT_TECHNOLOGY, zero
            )
            == 0.0
        )
