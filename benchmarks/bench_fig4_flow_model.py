"""Fig. 4: the min-cost network-flow assignment model.

Reports the network's structure (nodes/arcs after pruning) and times the
from-scratch successive-shortest-path solver on a literal Fig. 4 network.
"""

import numpy as np
import pytest

from repro.experiments import fig4_network_structure, format_table
from repro.opt import FlowNetwork

from conftest import record_artifact


@pytest.fixture(scope="module")
def fig4_artifact(suite):
    data = fig4_network_structure(suite, suite.names[0])
    rows = [{"quantity": k, "value": v} for k, v in data.items()]
    record_artifact(
        "Fig. 4",
        format_table(rows, f"Fig. 4 - assignment flow network ({suite.names[0]})"),
    )
    return data


@pytest.fixture(scope="module")
def ssp_instance():
    rng = np.random.default_rng(42)
    n_ff, n_rings = 60, 9
    costs = rng.uniform(1.0, 200.0, size=(n_ff, n_rings))
    return costs


def test_bench_ssp_solver(benchmark, fig4_artifact, ssp_instance):
    assert fig4_artifact["ff_ring_arcs"] > 0

    costs = ssp_instance
    n_ff, n_rings = costs.shape

    def build_and_solve():
        net = FlowNetwork()
        for i in range(n_ff):
            net.add_arc("s", ("ff", i), 1, 0.0)
            for j in range(n_rings):
                net.add_arc(("ff", i), ("ring", j), 1, float(costs[i, j]))
        for j in range(n_rings):
            net.add_arc(("ring", j), "t", 8, 0.0)
        return net.solve({"s": n_ff, "t": -n_ff})

    result = benchmark(build_and_solve)
    assert result.total_flow == n_ff
