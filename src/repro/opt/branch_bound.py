"""Generic 0-1 ILP branch-and-bound solver.

Plays the role of the "public domain ILP solver" (GLPK) the paper compares
greedy rounding against in Table I: a *generic* exact method that explores
an LP-relaxation search tree, with a wall-clock time limit after which the
best incumbent found so far is reported — exactly how the paper bounded the
ILP solver to 10 hours and reported its best feasible solution.

The LP relaxations are solved with HiGHS via scipy; branching is on the
most fractional integer variable, best-first by relaxation bound.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import InfeasibleError, UnboundedError
from .lp import LinearProgram


@dataclass(frozen=True, slots=True)
class BBResult:
    """Outcome of a branch-and-bound run."""

    #: "optimal", "feasible" (time/node limit hit with an incumbent), or
    #: "no_solution" (limit hit before any integer-feasible point).
    status: str
    objective: float
    values: dict[str, float]
    #: Best lower bound proved (minimization).
    best_bound: float
    nodes_explored: int
    elapsed_seconds: float

    @property
    def gap(self) -> float:
        """Relative optimality gap of the incumbent (inf if no incumbent)."""
        if math.isinf(self.objective):
            return math.inf
        denom = max(abs(self.objective), 1e-12)
        return (self.objective - self.best_bound) / denom


def branch_and_bound(
    lp: LinearProgram,
    time_limit: float | None = None,
    node_limit: int | None = None,
    integrality_tol: float = 1e-6,
    gap_tol: float = 1e-9,
) -> BBResult:
    """Solve a 0-1 (or general-integer-bounded) LP by branch and bound."""
    arrays = lp.to_arrays()
    c = arrays["c"]
    A_ub, b_ub = arrays["A_ub"], arrays["b_ub"]
    A_eq, b_eq = arrays["A_eq"], arrays["b_eq"]
    base_bounds = arrays["bounds"]
    integrality = arrays["integrality"]
    order: list[str] = arrays["order"]
    int_vars = [i for i, flag in enumerate(integrality) if flag]

    start = time.monotonic()

    def elapsed() -> float:
        return time.monotonic() - start

    def solve_relaxation(bounds: list[tuple[float, float]]) -> Any:
        from scipy.optimize import linprog

        res = linprog(
            c, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq, bounds=bounds,
            method="highs",
        )
        if res.status == 2:
            return None
        if res.status == 3:
            raise UnboundedError("ILP relaxation is unbounded")
        if not res.success:
            return None
        return res

    incumbent_obj = math.inf
    incumbent_x: np.ndarray | None = None
    nodes = 0

    root = solve_relaxation(base_bounds)
    if root is None:
        raise InfeasibleError("root LP relaxation is infeasible")

    # Best-first queue ordered by relaxation objective (lower bound).
    counter = 0
    heap: list[tuple[float, int, list[tuple[float, float]], np.ndarray]] = [
        (root.fun, counter, base_bounds, root.x)
    ]
    best_bound = root.fun

    def most_fractional(x: np.ndarray) -> int | None:
        worst, pick = integrality_tol, None
        for i in int_vars:
            frac = abs(x[i] - round(x[i]))
            if frac > worst:
                worst, pick = frac, i
        return pick

    while heap:
        if time_limit is not None and elapsed() > time_limit:
            break
        if node_limit is not None and nodes >= node_limit:
            break
        bound, _, bounds, x = heapq.heappop(heap)
        best_bound = bound
        if bound >= incumbent_obj - gap_tol:
            break  # proven optimal: best open node cannot improve
        nodes += 1
        branch_var = most_fractional(x)
        if branch_var is None:
            if bound < incumbent_obj:
                incumbent_obj = bound
                incumbent_x = x.copy()
            continue
        value = x[branch_var]
        for lo, hi in (
            (bounds[branch_var][0], math.floor(value)),
            (math.ceil(value), bounds[branch_var][1]),
        ):
            if lo > hi:
                continue
            child_bounds = list(bounds)
            child_bounds[branch_var] = (float(lo), float(hi))
            res = solve_relaxation(child_bounds)
            if res is None or res.fun >= incumbent_obj - gap_tol:
                continue
            child_x = res.x
            if most_fractional(child_x) is None:
                if res.fun < incumbent_obj:
                    incumbent_obj = res.fun
                    incumbent_x = child_x.copy()
            else:
                counter += 1
                heapq.heappush(heap, (res.fun, counter, child_bounds, child_x))

    exhausted = not heap
    if incumbent_x is None:
        return BBResult(
            status="no_solution",
            objective=math.inf,
            values={},
            best_bound=best_bound,
            nodes_explored=nodes,
            elapsed_seconds=elapsed(),
        )
    if exhausted or best_bound >= incumbent_obj - gap_tol:
        status = "optimal"
        best_bound = incumbent_obj
    else:
        status = "feasible"
    values = dict(zip(order, (float(v) for v in incumbent_x)))
    return BBResult(
        status=status,
        objective=float(incumbent_obj),
        values=values,
        best_bound=float(best_bound),
        nodes_explored=nodes,
        elapsed_seconds=elapsed(),
    )
