"""Runtime nondeterminism tripwires.

The static pass (:mod:`repro.lint`) proves the *source* is free of
nondeterminism hazard patterns; this module confirms it *dynamically*: a
:class:`Sanitizer` patches the process-global entry points a
reproducible flow must never touch — wall-clock reads (``time.time``)
and the shared ``random`` / ``numpy.random`` generator state — with
tripwires that record a counter through :mod:`repro.obs` and, in
``raise`` mode, abort with :class:`~repro.errors.SanitizerError`.

Activation:

* ``FlowOptions(sanitize=True)`` arms the tripwires for the duration of
  :meth:`IntegratedFlow.run`;
* the ``REPRO_SANITIZE`` environment variable arms them for every flow
  in the process — ``1``/``raise`` aborts on the first trip, ``record``
  lets the run continue (the original function is called through) while
  counting trips, so a CI job can report all of them at once.

The patches swap module attributes and restore them on exit, so the
sanitizer must not wrap code that runs concurrent threads drawing from
the global RNG — flow runs are single-threaded, and worker processes
arm their own sanitizer via the environment variable.

Deliberately *not* patched: ``time.monotonic`` / ``time.perf_counter``
(latency metrics are legitimate — they never feed flow decisions),
seeded ``random.Random`` / ``numpy.random.Generator`` instances (the
reproducible way to draw), and ``datetime.now`` (an immutable C type;
the static DET004 rule covers it).
"""

from __future__ import annotations

import os
import random
import time
from types import TracebackType
from typing import Any, Callable, Literal

import numpy as np

from ..errors import SanitizerError
from ..obs import NULL_COLLECTOR, Collector

__all__ = [
    "SANITIZE_ENV",
    "Sanitizer",
    "sanitize_action_from_env",
]

#: Environment variable arming the tripwires process-wide.
SANITIZE_ENV = "REPRO_SANITIZE"

#: ``random`` module functions bound to the hidden global Random().
_RANDOM_ATTRS = (
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "setstate", "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
)

#: Legacy ``numpy.random`` functions bound to the global RandomState.
_NP_RANDOM_ATTRS = (
    "beta", "binomial", "choice", "exponential", "normal", "permutation",
    "poisson", "rand", "randint", "randn", "random", "random_sample",
    "seed", "shuffle", "standard_normal", "uniform",
)

_WALL_CLOCK_ATTRS = ("time", "time_ns")


class Sanitizer:
    """Context manager installing the nondeterminism tripwires.

    ``action="raise"`` aborts on the first trip with
    :class:`SanitizerError`; ``action="record"`` counts the trip on the
    collector (``sanitize.trips`` plus one ``sanitize.trip.<name>``
    counter per entry point) and calls the original through.  Trip
    descriptions accumulate on :attr:`trips` either way.
    """

    def __init__(
        self,
        action: Literal["raise", "record"] = "raise",
        collector: Collector = NULL_COLLECTOR,
    ) -> None:
        if action not in ("raise", "record"):
            raise ValueError(
                f"Sanitizer action must be 'raise' or 'record', not {action!r}"
            )
        self.action = action
        self.collector = collector
        #: Human-readable descriptions of every tripped call.
        self.trips: list[str] = []
        self._saved: list[tuple[Any, str, Any]] = []
        self._active = False

    # ------------------------------------------------------------------
    @property
    def trip_count(self) -> int:
        return len(self.trips)

    def _tripwire(
        self, module: Any, modname: str, attr: str
    ) -> Callable[..., Any]:
        original = getattr(module, attr)
        qualname = f"{modname}.{attr}"

        def tripped(*args: Any, **kwargs: Any) -> Any:
            self.trips.append(qualname)
            self.collector.count("sanitize.trips")
            self.collector.count(f"sanitize.trip.{qualname}")
            if self.action == "raise":
                raise SanitizerError(
                    f"nondeterminism tripwire: {qualname}() called while "
                    f"the sanitizer is armed; use a seeded generator "
                    f"(random.Random / numpy.random.default_rng) or "
                    f"time.monotonic for latency metrics"
                )
            return original(*args, **kwargs)

        return tripped

    def _patch(self, module: Any, modname: str, attrs: tuple[str, ...]) -> None:
        for attr in attrs:
            if not hasattr(module, attr):
                continue
            self._saved.append((module, attr, getattr(module, attr)))
            setattr(module, attr, self._tripwire(module, modname, attr))

    # ------------------------------------------------------------------
    def __enter__(self) -> "Sanitizer":
        if self._active:
            raise SanitizerError("Sanitizer context is not re-entrant")
        self._active = True
        self._patch(time, "time", _WALL_CLOCK_ATTRS)
        self._patch(random, "random", _RANDOM_ATTRS)
        self._patch(np.random, "numpy.random", _NP_RANDOM_ATTRS)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        while self._saved:
            module, attr, original = self._saved.pop()
            setattr(module, attr, original)
        self._active = False


def sanitize_action_from_env() -> Literal["raise", "record"] | None:
    """The :data:`SANITIZE_ENV` action, or None when disarmed.

    ``1``, ``true``, ``on``, and ``raise`` arm the aborting mode;
    ``record`` arms the counting mode; anything else (including unset
    and ``0``) leaves the sanitizer off.
    """
    raw = os.environ.get(SANITIZE_ENV, "").strip().lower()
    if raw in ("1", "true", "on", "raise"):
        return "raise"
    if raw == "record":
        return "record"
    return None
