"""Extension: exact DME vs point-merging zero-skew clock trees.

Both embedders produce exact zero skew; DME's deferred merge regions save
wire.  The artifact compares total wirelength over the first configured
circuit's flip-flops; the timed kernel is the DME synthesis.
"""

import pytest

from repro.clocktree import (
    path_length_stats,
    synthesize_bounded_skew_tree,
    synthesize_clock_tree,
    synthesize_clock_tree_dme,
)
from repro.experiments import format_table

from conftest import record_artifact


@pytest.fixture(scope="module")
def sink_positions(s9234_experiment):
    exp = s9234_experiment
    return {
        ff.name: exp.flow.positions[ff.name] for ff in exp.circuit.flip_flops
    }


@pytest.fixture(scope="module")
def dme_rows(suite, sink_positions):
    pm = synthesize_clock_tree(sink_positions, suite.tech)
    dme = synthesize_clock_tree_dme(sink_positions, suite.tech)
    bst = synthesize_bounded_skew_tree(sink_positions, suite.tech, skew_bound=5.0)
    rows = [
        {
            "embedder": "point merging",
            "wirelength_um": pm.total_wirelength,
            "source_delay_ps": pm.source_delay,
            "pl_avg_um": path_length_stats(pm).average,
        },
        {
            "embedder": "exact DME",
            "wirelength_um": dme.total_wirelength,
            "source_delay_ps": dme.source_delay,
            "pl_avg_um": path_length_stats(dme).average,
        },
        {
            "embedder": "bounded skew (5 ps)",
            "wirelength_um": bst.total_wirelength,
            "source_delay_ps": bst.delay_max,
            "pl_avg_um": path_length_stats(bst.tree).average,
        },
    ]
    record_artifact(
        "Extension: clock-tree embedders",
        format_table(rows, "Extension - zero-skew embedder comparison"),
    )
    return rows


def test_bench_dme_synthesis(benchmark, suite, sink_positions, dme_rows):
    pm_wl = dme_rows[0]["wirelength_um"]
    dme_wl = dme_rows[1]["wirelength_um"]
    bst_wl = dme_rows[2]["wirelength_um"]
    assert dme_wl <= pm_wl + 1e-6
    assert bst_wl <= pm_wl + 1e-6

    tree = benchmark(synthesize_clock_tree_dme, sink_positions, suite.tech)
    assert tree.total_wirelength == pytest.approx(dme_wl)
