"""Optimization kernels: LP/ILP facade, simplex, min-cost flow, B&B, graphs."""

from .branch_bound import BBResult, branch_and_bound
from .diffconstraints import (
    SkewConstraint,
    check_constraints,
    maximize_slack,
    solve_difference_constraints,
)
from .lp import LinearProgram, LPSolution
from .mincostflow import (
    FORBIDDEN_COST,
    ArcRef,
    FlowNetwork,
    FlowResult,
    refine_assignment,
    solve_transportation,
)
from .simplex import solve_simplex

__all__ = [
    "LinearProgram",
    "LPSolution",
    "solve_simplex",
    "FlowNetwork",
    "FlowResult",
    "ArcRef",
    "FORBIDDEN_COST",
    "solve_transportation",
    "refine_assignment",
    "BBResult",
    "branch_and_bound",
    "SkewConstraint",
    "solve_difference_constraints",
    "maximize_slack",
    "check_constraints",
]
