"""Table I: integrality gap of greedy rounding vs a generic ILP solver.

Regenerates the paper's comparison (greedy rounding solves in fractions of
a second; a generic branch-and-bound under a time limit is orders of
magnitude slower — the paper bounded GLPK to 10 hours, we bound our B&B to
seconds).  The timed kernel is the full LP-relaxation + greedy-rounding
pipeline on the first configured circuit.
"""

import pytest

from repro.core import solve_minmax_cap, tapping_cost_matrix
from repro.experiments import format_table, table1_integrality_gap

from conftest import record_artifact, table1_time_limit


@pytest.fixture(scope="module")
def table1_artifact(suite):
    rows = table1_integrality_gap(suite, ilp_time_limit=table1_time_limit())
    record_artifact(
        "Table I",
        format_table(rows, "Table I - IG of greedy rounding vs generic ILP solver"),
    )
    return rows


@pytest.fixture(scope="module")
def cap_matrix(suite, s9234_experiment):
    exp = s9234_experiment
    targets = exp.ilp.schedule.normalized(suite.options.period).targets
    matrix = tapping_cost_matrix(
        exp.ilp.array,
        exp.ilp.positions,
        targets,
        suite.tech,
        suite.options.candidate_rings,
    )
    return matrix.capacitance_matrix(suite.tech)


def test_bench_greedy_rounding_pipeline(benchmark, table1_artifact, cap_matrix):
    for row in table1_artifact:
        assert row["greedy_ig"] >= 1.0 - 1e-9
        assert row["greedy_cpu_s"] <= row["ilp_solver_cpu_s"] + 1.0
    result = benchmark(solve_minmax_cap, cap_matrix)
    assert result.integrality_gap >= 1.0 - 1e-9
