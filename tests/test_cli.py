"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "s9234"])
        assert args.engine == "flow"
        assert args.iterations == 5
        assert args.period == 1000.0

    def test_unknown_circuit_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "s000"])

    def test_engine_choice(self):
        args = build_parser().parse_args(["run", "s5378", "--engine", "ilp"])
        assert args.engine == "ilp"


class TestCommands:
    def test_bench_info(self, capsys):
        assert main(["bench-info", "s9234"]) == 0
        out = capsys.readouterr().out
        assert "1510 cells" in out
        assert "16 rings" in out

    def test_run_small(self, capsys):
        # s5378 is the fastest paper circuit; 1 iteration keeps this quick.
        assert main(["run", "s5378", "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "base" in out and "final" in out
        assert "tap WL" in out

    def test_sweep_rings_small(self, capsys):
        assert main(
            ["sweep-rings", "s5378", "--sides", "2,3", "--iterations", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "best" in out
