"""Per-rule fixtures for the API hygiene rules."""

from textwrap import dedent

from repro.lint import lint_source


def codes(source: str) -> list[str]:
    return [f.code for f in lint_source(dedent(source))]


class TestApi001MutableDefault:
    def test_list_literal_default(self):
        assert codes(
            "def f(x: int, items: list = []) -> list:\n    return items\n"
        ) == ["API001"]

    def test_dict_literal_default(self):
        assert codes(
            "def f(cache: dict = {}) -> dict:\n    return cache\n"
        ) == ["API001"]

    def test_set_literal_default(self):
        assert codes(
            "def f(seen: set = {1}) -> set:\n    return seen\n"
        ) == ["API001"]

    def test_factory_call_default(self):
        assert codes(
            "def f(items: list = list()) -> list:\n    return items\n"
        ) == ["API001"]

    def test_none_default_is_clean(self):
        src = """
        def f(items: "list | None" = None) -> list:
            return items or []
        """
        assert codes(src) == []

    def test_tuple_default_is_clean(self):
        assert codes(
            "def f(dims: tuple = (1, 2)) -> tuple:\n    return dims\n"
        ) == []

    def test_fires_on_private_functions_too(self):
        assert codes("def _f(items=[]):\n    return items\n") == ["API001"]


class TestApi002SwallowedException:
    def test_bare_except(self):
        src = """
        def f() -> None:
            try:
                work()
            except:
                pass
        """
        assert codes(src) == ["API002"]

    def test_broad_except_without_reraise(self):
        src = """
        def f() -> None:
            try:
                work()
            except Exception:
                log()
        """
        assert codes(src) == ["API002"]

    def test_broad_except_in_tuple(self):
        src = """
        def f() -> None:
            try:
                work()
            except (ValueError, Exception) as exc:
                log(exc)
        """
        assert codes(src) == ["API002"]

    def test_broad_except_that_reraises_is_clean(self):
        src = """
        def f() -> None:
            try:
                work()
            except Exception as exc:
                raise RuntimeError("wrapped") from exc
        """
        assert codes(src) == []

    def test_narrow_except_is_clean(self):
        src = """
        def f() -> None:
            try:
                work()
            except ValueError:
                pass
        """
        assert codes(src) == []


class TestApi003MissingAnnotations:
    def test_unannotated_public_function(self):
        findings = lint_source("def compute(x):\n    return x\n")
        assert [f.code for f in findings] == ["API003"]
        assert findings[0].severity.name == "WARNING"

    def test_missing_return_annotation(self):
        assert codes("def compute(x: int):\n    return x\n") == ["API003"]

    def test_fully_annotated_is_clean(self):
        assert codes("def compute(x: int) -> int:\n    return x\n") == []

    def test_private_function_is_exempt(self):
        assert codes("def _helper(x):\n    return x\n") == []

    def test_nested_function_is_exempt(self):
        src = """
        def outer() -> None:
            def inner(x):
                return x
        """
        assert codes(src) == []

    def test_method_self_needs_no_annotation(self):
        src = """
        class C:
            def get(self) -> int:
                return 1
        """
        assert codes(src) == []

    def test_classmethod_cls_needs_no_annotation(self):
        src = """
        class C:
            @classmethod
            def make(cls) -> "C":
                return cls()
        """
        assert codes(src) == []

    def test_dunder_is_exempt(self):
        # Leading underscore (incl. dunders) exempts a def from API003;
        # the mypy --strict surface covers special methods instead.
        src = """
        class C:
            def __init__(self, n):
                self.n = n
        """
        assert codes(src) == []

    def test_static_method_first_arg_is_checked(self):
        src = """
        class C:
            @staticmethod
            def make(n) -> int:
                return n
        """
        assert codes(src) == ["API003"]

    def test_unannotated_public_method(self):
        src = """
        class C:
            def scale(self, factor):
                return factor
        """
        assert codes(src) == ["API003"]
