"""Table VI: power dissipation for both formulations vs the base case.

The timed kernel is the eq. (8) power evaluation over a full design point
(clock + signal nets, buffer estimation included).
"""

import pytest

from repro.constants import frequency_ghz
from repro.experiments import format_table, table6_power
from repro.power import clock_power_mw, signal_power_mw

from conftest import record_artifact


@pytest.fixture(scope="module")
def table6_artifact(suite):
    rows = table6_power(suite)
    record_artifact(
        "Table VI",
        format_table(rows, "Table VI - power dissipation (mW) vs base case"),
    )
    return rows


def test_bench_power_model(benchmark, table6_artifact, suite, s9234_experiment):
    for row in table6_artifact:
        # Network flow wins clock power; totals improve for both engines.
        assert row["nf_clock_imp"] >= -1e-9
        assert row["nf_total_imp"] >= -0.05
    exp = s9234_experiment
    freq = frequency_ghz(suite.options.period)
    n_ff = len(exp.circuit.flip_flops)

    def evaluate():
        clock = clock_power_mw(
            exp.flow.final.tapping_wirelength, n_ff, freq, suite.tech
        )
        signal = signal_power_mw(
            exp.circuit, exp.flow.final.signal_wirelength, freq, suite.tech
        )
        return clock + signal

    total = benchmark(evaluate)
    assert total > 0.0
