"""Tests for the parallel, fault-tolerant experiment runner.

Determinism contract (also asserted by the CI ``tables-smoke`` job):
Tables II, VI, and VII are byte-identical between serial, parallel, and
resumed runs; Tables III-V carry measured CPU-seconds columns (wall
clock of the original run) and are compared with those columns removed.
Table I embeds a *time-limited* generic ILP solve and is excluded.
"""

import json
import os

import pytest

from repro.core import FlowOptions
from repro.experiments import (
    CheckpointStore,
    ExperimentSuite,
    ParallelOptions,
    ParallelSuiteRunner,
    parallel_options_from_flags,
    run_parallel_suite,
    table2_test_cases,
    table3_base_case,
    table4_network_flow,
    table5_load_capacitance,
    table6_power,
    table7_wcp,
)
from repro.experiments.parallel import FAULT_ENV, _maybe_inject_fault

OPTS = FlowOptions(max_iterations=2)
CIRCUITS = ["tinyA", "tinyB"]

#: Wall-clock columns: facts of the measuring run, not of the design.
CPU_KEYS = {"cpu_s", "cpu_stages_s", "cpu_placer_s", "ilp_cpu_s"}

DETERMINISTIC_TABLES = (table2_test_cases, table6_power, table7_wcp)
TIMED_TABLES = (table3_base_case, table4_network_flow, table5_load_capacitance)


def canon(rows, drop=()):
    kept = [{k: v for k, v in r.items() if k not in drop} for r in rows]
    return json.dumps(kept, sort_keys=True, default=str)


def strip_timing(doc):
    """A FlowResult document minus its measured wall-clock fields."""
    doc = dict(doc)
    doc.pop("seconds", None)
    for key in ("base", "final"):
        doc[key] = {k: v for k, v in doc[key].items() if k != "seconds"}
    doc["history"] = [
        {k: v for k, v in rec.items() if k != "seconds"}
        for rec in doc["history"]
    ]
    if doc.get("ilp_stats"):
        doc["ilp_stats"] = {
            k: v for k, v in doc["ilp_stats"].items() if k != "solve_seconds"
        }
    return doc


@pytest.fixture(scope="module")
def serial_suite():
    suite = ExperimentSuite(circuits=CIRCUITS, options=OPTS)
    suite.run_all()
    return suite


@pytest.fixture(scope="module")
def parallel_suite():
    suite = ExperimentSuite(circuits=CIRCUITS, options=OPTS)
    report = run_parallel_suite(suite, ParallelOptions(workers=2))
    assert report.ok, report
    return suite, report


class TestDeterminism:
    def test_report_shape(self, parallel_suite):
        _, report = parallel_suite
        assert set(report.completed) == set(CIRCUITS)
        assert report.resumed == () and report.failed == ()
        assert report.retries == report.timeouts == report.crashes == 0

    def test_untimed_tables_byte_identical(self, serial_suite, parallel_suite):
        par, _ = parallel_suite
        for table in DETERMINISTIC_TABLES:
            assert canon(table(serial_suite)) == canon(table(par)), table.__name__

    def test_timed_tables_identical_minus_cpu(self, serial_suite, parallel_suite):
        par, _ = parallel_suite
        for table in TIMED_TABLES:
            assert canon(table(serial_suite), drop=CPU_KEYS) == canon(
                table(par), drop=CPU_KEYS
            ), table.__name__

    def test_flow_results_bit_identical(self, serial_suite, parallel_suite):
        # Everything except measured wall-clock is bit-identical: the
        # worker's result crossed a to_dict/from_dict round trip.
        par, _ = parallel_suite
        for name in CIRCUITS:
            assert strip_timing(serial_suite.run(name).flow.to_dict()) == strip_timing(
                par.run(name).flow.to_dict()
            )
            assert strip_timing(serial_suite.run(name).ilp.to_dict()) == strip_timing(
                par.run(name).ilp.to_dict()
            )


class TestFaultTolerance:
    def test_crash_once_is_retried_to_success(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "tinyA:ilp:crash:1")
        suite = ExperimentSuite(circuits=["tinyA"], options=OPTS)
        report = run_parallel_suite(
            suite,
            ParallelOptions(workers=2, max_retries=2, backoff_seconds=0.05),
        )
        assert report.ok, report
        assert report.crashes >= 1
        assert report.retries >= 1
        assert suite.is_cached("tinyA") and not suite.failures

    def test_persistent_error_degrades_to_partial_row(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "tinyB:*:error")
        suite = ExperimentSuite(circuits=CIRCUITS, options=OPTS)
        report = run_parallel_suite(
            suite, ParallelOptions(workers=2, max_retries=0)
        )
        assert not report.ok
        assert {f.circuit for f in report.failed} == {"tinyB"}
        assert all(f.kind == "error" for f in report.failed)
        assert "tinyB" in suite.failures
        # The table degrades: tinyA full row, tinyB annotated error row.
        rows = table4_network_flow(suite)
        by_name = {r["circuit"]: r for r in rows}
        assert "error" not in by_name["tinyA"]
        assert "injected fault" in str(by_name["tinyB"]["error"])

    def test_hang_hits_timeout(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "tinyA:flow:hang")
        suite = ExperimentSuite(circuits=["tinyA"], options=OPTS)
        report = run_parallel_suite(
            suite, ParallelOptions(workers=2, timeout=3.0, max_retries=0)
        )
        assert not report.ok
        assert report.timeouts >= 1
        assert any(f.kind == "timeout" for f in report.failed)
        assert "tinyA" in suite.failures

    def test_resume_completes_after_failure(self, monkeypatch, tmp_path):
        store = CheckpointStore(tmp_path)
        monkeypatch.setenv(FAULT_ENV, "tinyB:*:error")
        first = ExperimentSuite(
            circuits=CIRCUITS, options=OPTS, checkpoints=store, resume=True
        )
        report1 = run_parallel_suite(first, ParallelOptions(workers=2, max_retries=0))
        assert not report1.ok and first.is_cached("tinyA")
        assert len(store.entries()) == 1  # tinyA checkpointed, tinyB not

        monkeypatch.delenv(FAULT_ENV)
        second = ExperimentSuite(
            circuits=CIRCUITS, options=OPTS, checkpoints=store, resume=True
        )
        report2 = run_parallel_suite(second, ParallelOptions(workers=2))
        assert report2.ok
        assert report2.resumed == ("tinyA",)
        assert report2.completed == ("tinyB",)
        assert not second.failures
        # The resumed circuit is bit-identical to the first run's.
        assert (
            second.run("tinyA").flow.to_dict()
            == first.run("tinyA").flow.to_dict()
        )


class TestFaultInjectionHook:
    def test_no_env_is_noop(self, monkeypatch):
        monkeypatch.delenv(FAULT_ENV, raising=False)
        _maybe_inject_fault("tinyA", "flow", 1)

    def test_error_mode_raises_only_on_match(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "tinyA:flow:error")
        _maybe_inject_fault("tinyB", "flow", 1)  # circuit mismatch
        _maybe_inject_fault("tinyA", "ilp", 1)  # engine mismatch
        with pytest.raises(RuntimeError, match="injected fault"):
            _maybe_inject_fault("tinyA", "flow", 1)

    def test_wildcards_and_attempt_limit(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "*:*:error:2")
        with pytest.raises(RuntimeError):
            _maybe_inject_fault("anything", "flow", 1)
        with pytest.raises(RuntimeError):
            _maybe_inject_fault("anything", "ilp", 2)
        _maybe_inject_fault("anything", "flow", 3)  # past the limit

    def test_malformed_specs_are_ignored(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "garbage, tinyA:flow , ,")
        _maybe_inject_fault("tinyA", "flow", 1)


class TestOptions:
    def test_flags_helper(self):
        opts = parallel_options_from_flags(4, timeout=0.0, max_retries=1, backoff=0.1)
        assert opts.workers == 4
        assert opts.timeout is None  # 0 = no deadline
        assert opts.max_retries == 1
        assert parallel_options_from_flags(0).workers == 1
        assert parallel_options_from_flags(2, timeout=5.0).timeout == 5.0

    def test_bad_worker_count_rejected(self):
        suite = ExperimentSuite(circuits=["tinyA"], options=OPTS)
        with pytest.raises(ValueError):
            ParallelSuiteRunner(suite, ParallelOptions(workers=0))
