"""Levelized static timing analysis over a placed netlist.

Produces exactly what skew optimization needs: for every *sequentially
adjacent* flip-flop pair ``i -> j`` (combinational logic only between
them), the maximum and minimum path delays ``D_max^ij`` / ``D_min^ij``,
measured from the launching flip-flop's clock-to-Q through gates and star-
routed wires (Elmore) to the capturing flip-flop's D pin.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Mapping

from ..constants import Technology
from ..errors import CombinationalCycleError, TimingError
from ..geometry import Point
from ..netlist import Cell, CellKind, Circuit
from .elmore import buffered_branch_load, buffered_wire_delay
from .gates import GateDelayModel


@dataclass(frozen=True, slots=True)
class PathBounds:
    """Min/max combinational delay between one sequential pair (ps)."""

    d_min: float
    d_max: float


class SequentialTiming:
    """D_min/D_max for all sequentially adjacent flip-flop pairs.

    Parameters
    ----------
    circuit:
        A validated circuit.
    positions:
        Placement: cell name -> :class:`Point`.  Missing cells default to
        the origin (useful for pre-placement estimates); wire delays then
        collapse to zero length.
    tech:
        Technology parameters.
    """

    def __init__(
        self,
        circuit: Circuit,
        positions: Mapping[str, Point],
        tech: Technology,
    ) -> None:
        self.circuit = circuit
        self.tech = tech
        self.model = GateDelayModel(tech)
        self._positions = positions
        self._pairs: dict[tuple[str, str], PathBounds] = {}
        self._analyze()

    # ------------------------------------------------------------------
    @property
    def pairs(self) -> dict[tuple[str, str], PathBounds]:
        """``{(launch_ff, capture_ff): PathBounds}`` for adjacent pairs."""
        return self._pairs

    def bounds(self, launch: str, capture: str) -> PathBounds:
        try:
            return self._pairs[(launch, capture)]
        except KeyError:
            raise TimingError(
                f"flip-flops {launch!r} -> {capture!r} are not sequentially adjacent"
            ) from None

    @property
    def max_delay(self) -> float:
        """Largest D_max over all pairs (the critical register-to-register
        path); 0.0 when there are no pairs."""
        return max((b.d_max for b in self._pairs.values()), default=0.0)

    # ------------------------------------------------------------------
    def _pos(self, name: str) -> Point:
        return self._positions.get(name, Point(0.0, 0.0))

    def _analyze(self) -> None:
        circuit = self.circuit
        tech = self.tech
        model = self.model

        # Wire length and driver load per net (star model, long branches
        # repeater-buffered so the driver only sees the first segment).
        # Nets whose aggregate load still exceeds the driver limit get a
        # buffer tree: the driver sees the capped load and every branch
        # pays the tree's level delay.
        branch_len: dict[tuple[str, str], float] = {}
        load_cap: dict[str, float] = {}
        tree_delay: dict[str, float] = {}
        limit = tech.max_driver_load
        branching = tech.buffer_tree_branching
        buf_stage = (
            tech.buffer_intrinsic_delay
            + tech.buffer_drive_resistance * limit * 1e-3
        )
        for net in circuit.nets.values():
            dp = self._pos(net.driver)
            total = 0.0
            for sink in net.sinks:
                length = dp.manhattan(self._pos(sink))
                branch_len[(net.driver, sink)] = length
                total += buffered_branch_load(
                    length, model.input_cap(circuit.cell(sink).kind), tech
                )
            if total > limit:
                levels = math.ceil(math.log(total / limit) / math.log(branching))
                tree_delay[net.driver] = levels * buf_stage
                total = limit
            load_cap[net.driver] = total

        # Per-cell output delay (gate or clock-to-Q).
        cell_delay: dict[str, float] = {}
        for cell in circuit:
            cell_delay[cell.name] = model.delay(cell.kind, load_cap.get(cell.name, 0.0))

        # Edge delay from driver output to sink input: buffered-wire
        # Elmore (the driver's own resistance is inside cell_delay).
        def edge_delay(driver: str, sink: str) -> float:
            length = branch_len[(driver, sink)]
            sink_cap = model.input_cap(circuit.cell(sink).kind)
            return tree_delay.get(driver, 0.0) + buffered_wire_delay(
                length, sink_cap, tech
            )

        topo_index = self._topological_order()

        # Combinational adjacency: signal -> [(consumer node, wire delay)].
        consumers: dict[str, list[tuple[str, float]]] = {}
        for net in circuit.nets.values():
            lst: list[tuple[str, float]] = []
            for sink in net.sinks:
                sink_cell = circuit.cell(sink)
                if sink_cell.kind is CellKind.OUTPUT:
                    continue  # PO paths are not register-to-register
                node = (
                    Circuit.dff_data_node(sink)
                    if sink_cell.is_flipflop
                    else sink
                )
                lst.append((node, edge_delay(net.driver, sink)))
            consumers[net.driver] = lst

        for ff in circuit.flip_flops:
            self._propagate_from(ff, consumers, cell_delay, topo_index)

    def _topological_order(self) -> dict[str, int]:
        """Topological index of every node in the combinational DAG."""
        indeg: dict[str, int] = {}
        succ: dict[str, list[str]] = {}
        for u, v in self.circuit.combinational_edges():
            indeg[v] = indeg.get(v, 0) + 1
            indeg.setdefault(u, 0)
            succ.setdefault(u, []).append(v)
        ready = [n for n, d in indeg.items() if d == 0]
        order: dict[str, int] = {}
        while ready:
            n = ready.pop()
            order[n] = len(order)
            for m in succ.get(n, ()):
                indeg[m] -= 1
                if indeg[m] == 0:
                    ready.append(m)
        if len(order) != len(indeg):
            stuck = [n for n, d in indeg.items() if d > 0]
            raise CombinationalCycleError(stuck)
        return order

    def _propagate_from(
        self,
        source: Cell,
        consumers: dict[str, list[tuple[str, float]]],
        cell_delay: dict[str, float],
        topo_index: dict[str, int],
    ) -> None:
        """Min/max arrival propagation over the source's fanout cone."""
        index = topo_index.get(source.name)
        if index is None:
            # A flip-flop whose Q drives nothing never enters the
            # combinational DAG; it launches no register-to-register path.
            return None
        start = cell_delay[source.name]  # clock-to-Q
        arrivals: dict[str, tuple[float, float]] = {source.name: (start, start)}
        heap: list[tuple[int, str]] = [(index, source.name)]
        seen: set[str] = set()
        while heap:
            _, node = heapq.heappop(heap)
            if node in seen:
                continue
            seen.add(node)
            mn, mx = arrivals[node]
            if node.endswith("$D"):
                # Captured at a register (self-loops i -> i are legitimate
                # sequential pairs); do not pass through.
                capture = node[:-2]
                key = (source.name, capture)
                prev = self._pairs.get(key)
                if prev is None:
                    self._pairs[key] = PathBounds(mn, mx)
                else:
                    self._pairs[key] = PathBounds(
                        min(prev.d_min, mn), max(prev.d_max, mx)
                    )
                continue
            # Leaving a gate node adds its delay (already included for the
            # source's clock-to-Q in `start`).
            for succ, wire in consumers.get(node, []):  # signal fanout
                base_mn = mn + wire
                base_mx = mx + wire
                if not succ.endswith("$D"):
                    gd = cell_delay[succ]
                    base_mn += gd
                    base_mx += gd
                cur = arrivals.get(succ)
                if cur is None:
                    arrivals[succ] = (base_mn, base_mx)
                    heapq.heappush(heap, (topo_index[succ], succ))
                else:
                    arrivals[succ] = (min(cur[0], base_mn), max(cur[1], base_mx))
        return None
