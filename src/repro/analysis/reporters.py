"""Render a :class:`~repro.analysis.diagnostics.CheckReport`.

Three formats: a human ``text`` listing, a machine ``json`` document, and
SARIF 2.1.0 for code-scanning UIs (the CI job uploads the SARIF artifact).
"""

from __future__ import annotations

import json
from typing import Any

from .diagnostics import CheckReport
from .rules import registered_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-check"


def _tool_version() -> str:
    from .. import __version__

    return str(__version__)


def render_text(report: CheckReport) -> str:
    """Human-readable listing: one line per finding plus a summary."""
    lines = [f"check: {report.design}"]
    lines.extend(d.format() for d in report.findings)
    by_sev = report.counts_by_severity
    summary = ", ".join(f"{n} {sev}" for sev, n in sorted(by_sev.items())) or "clean"
    lines.append(
        f"{len(report.findings)} finding(s) ({summary}); "
        f"{len(report.rules_run)} rule(s) run, "
        f"{len(report.rules_skipped)} skipped"
    )
    return "\n".join(lines)


def render_json(report: CheckReport) -> str:
    """Stable JSON document with findings and per-code counts."""
    doc = {
        "design": report.design,
        "findings": [d.as_dict() for d in report.findings],
        "counts_by_code": report.counts_by_code,
        "counts_by_severity": report.counts_by_severity,
        "rules_run": list(report.rules_run),
        "rules_skipped": list(report.rules_skipped),
    }
    return json.dumps(doc, indent=2, sort_keys=False)


def sarif_document(report: CheckReport) -> dict[str, Any]:
    """The SARIF 2.1.0 log object for one checker run."""
    rules = registered_rules()
    rule_index = {r.code: i for i, r in enumerate(rules)}
    descriptors: list[dict[str, Any]] = [
        {
            "id": r.code,
            "name": r.name,
            "shortDescription": {"text": r.description},
            "defaultConfiguration": {"level": r.default_severity.sarif_level},
        }
        for r in rules
    ]
    results: list[dict[str, Any]] = []
    for d in report.findings:
        message = d.message if not d.hint else f"{d.message}. Hint: {d.hint}"
        result: dict[str, Any] = {
            "ruleId": d.code,
            "level": d.severity.sarif_level,
            "message": {"text": message},
            "locations": [
                {
                    "logicalLocations": [
                        {
                            "name": d.location.name,
                            "fullyQualifiedName": (
                                f"{report.design}/{d.location.kind}/"
                                f"{d.location.name}"
                            ),
                            "kind": d.location.kind,
                        }
                    ]
                }
            ],
        }
        idx = rule_index.get(d.code)
        if idx is not None:
            result["ruleIndex"] = idx
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": _tool_version(),
                        "informationUri": (
                            "https://github.com/paper-repro/rotary-clocking"
                        ),
                        "rules": descriptors,
                    }
                },
                "invocations": [
                    {"executionSuccessful": not report.has_errors}
                ],
                "results": results,
            }
        ],
    }


def render_sarif(report: CheckReport) -> str:
    """SARIF 2.1.0 JSON text."""
    return json.dumps(sarif_document(report), indent=2)
