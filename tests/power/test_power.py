"""Tests for the power models (eqs. 8 and 9, buffer estimation)."""

import pytest

from repro.constants import DEFAULT_TECHNOLOGY, Technology
from repro.power import (
    buffers_for_net,
    clock_power_mw,
    dynamic_power_mw,
    estimate_buffers_by_net,
    estimate_signal_buffers,
    leakage_power_mw,
    signal_power_mw,
)

TECH = DEFAULT_TECHNOLOGY


class TestDynamicPower:
    def test_eq8_formula(self):
        # P = 1/2 a V^2 f C: 1/2 * 1 * 1.8^2 * 1GHz * 1000fF = 1.62 mW
        p = dynamic_power_mw(1000.0, 1.0, TECH, activity=1.0)
        assert p == pytest.approx(0.5 * 1.8**2 * 1000.0 * 1e-3)

    def test_linear_in_frequency_and_cap(self):
        base = dynamic_power_mw(100.0, 1.0, TECH, 0.5)
        assert dynamic_power_mw(200.0, 1.0, TECH, 0.5) == pytest.approx(2 * base)
        assert dynamic_power_mw(100.0, 2.0, TECH, 0.5) == pytest.approx(2 * base)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            dynamic_power_mw(-1.0, 1.0, TECH, 1.0)

    def test_clock_power_components(self):
        p_no_wire = clock_power_mw(0.0, 10, 1.0, TECH)
        p_wire = clock_power_mw(1000.0, 10, 1.0, TECH)
        assert p_wire > p_no_wire
        expected_cap = 10 * TECH.flipflop_input_cap
        assert p_no_wire == pytest.approx(
            dynamic_power_mw(expected_cap, 1.0, TECH, TECH.clock_activity)
        )

    def test_signal_power_uses_low_activity(self, tiny_circuit):
        p = signal_power_mw(tiny_circuit, 10_000.0, 1.0, TECH)
        # Equivalent all-activity power must be much larger.
        hot = Technology(signal_activity=1.0)
        p_hot = signal_power_mw(tiny_circuit, 10_000.0, 1.0, hot)
        assert p_hot == pytest.approx(p / TECH.signal_activity, rel=1e-6)

    def test_signal_power_grows_with_wirelength(self, tiny_circuit):
        assert signal_power_mw(tiny_circuit, 20_000.0, 1.0, TECH) > signal_power_mw(
            tiny_circuit, 10_000.0, 1.0, TECH
        )


class TestLeakage:
    def test_eq9_formula(self, tiny_circuit):
        p = leakage_power_mw(tiny_circuit, TECH)
        n_ff = len(tiny_circuit.flip_flops)
        n_gates = len(tiny_circuit.gates)
        expected = TECH.vdd * TECH.unit_leakage_current * (
            n_gates * TECH.gate_size + n_ff * TECH.flipflop_size
        )
        assert p == pytest.approx(expected)

    def test_independent_of_placement(self, tiny_circuit):
        assert leakage_power_mw(tiny_circuit, TECH) == leakage_power_mw(
            tiny_circuit, TECH
        )


class TestBufferEstimate:
    def test_short_net_no_buffers(self):
        assert buffers_for_net(TECH.buffer_critical_length * 0.9, TECH) == 0

    def test_one_buffer_per_critical_length(self):
        assert buffers_for_net(TECH.buffer_critical_length * 2.5, TECH) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            buffers_for_net(-1.0, TECH)
        with pytest.raises(ValueError):
            estimate_signal_buffers(-1.0, TECH)

    def test_aggregate(self):
        total = estimate_signal_buffers(10 * TECH.buffer_critical_length, TECH)
        assert total == 10

    def test_by_net(self):
        lengths = {"n1": 0.0, "n2": TECH.buffer_critical_length * 3.2}
        out = estimate_buffers_by_net(lengths, TECH)
        assert out == {"n1": 0, "n2": 3}
