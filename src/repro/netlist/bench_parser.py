"""Reader and writer for the ISCAS89 ``.bench`` netlist format.

The format is line-oriented::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = DFF(G14)
    G14 = NAND(G0, G10)

Gate names and signal names coincide.  The clock pin of a DFF is implicit.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import TextIO

from ..errors import BenchParseError, NetlistError
from .cells import CellKind
from .circuit import Circuit

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^()\s]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(
    r"^([^()=\s]+)\s*=\s*([A-Za-z]+)\s*\(\s*([^()]*?)\s*\)$"
)

_KIND_ALIASES = {
    "BUFF": CellKind.BUF,
    "BUF": CellKind.BUF,
    "NOT": CellKind.NOT,
    "INV": CellKind.NOT,
    "AND": CellKind.AND,
    "NAND": CellKind.NAND,
    "OR": CellKind.OR,
    "NOR": CellKind.NOR,
    "XOR": CellKind.XOR,
    "XNOR": CellKind.XNOR,
    "DFF": CellKind.DFF,
}


def parse_bench_text(
    text: str, name: str = "bench", validate: bool = True
) -> Circuit:
    """Parse ``.bench`` source into a validated :class:`Circuit`.

    With ``validate=False`` the referential-integrity pass is skipped,
    returning a possibly broken circuit — the form the static checker
    (``repro check``) consumes so it can report dangling fanins itself.
    """
    circuit = Circuit(name)
    pending_outputs: list[str] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        decl = _DECL_RE.match(line)
        if decl:
            which, signal = decl.group(1).upper(), decl.group(2)
            if which == "INPUT":
                circuit.add_input(signal)
            else:
                # Defer: the driven signal may not be defined yet.
                pending_outputs.append(signal)
            continue
        gate = _GATE_RE.match(line)
        if gate:
            out, kind_str, args = gate.groups()
            kind = _KIND_ALIASES.get(kind_str.upper())
            if kind is None:
                raise BenchParseError(f"unknown gate type {kind_str!r}", lineno)
            fanin = tuple(a.strip() for a in args.split(",") if a.strip())
            try:
                circuit.add_gate(out, kind, fanin)
            except (NetlistError, ValueError) as exc:
                # NetlistError: duplicate names; ValueError: Cell's own
                # fanin-arity validation.
                raise BenchParseError(str(exc), lineno) from exc
            continue
        raise BenchParseError(f"unparseable line: {line!r}", lineno)
    for signal in pending_outputs:
        circuit.add_output(signal)
    if validate:
        try:
            circuit.validate()
        except NetlistError as exc:
            raise BenchParseError(f"invalid netlist: {exc}") from exc
    return circuit


def read_bench(path: str | Path, validate: bool = True) -> Circuit:
    """Read a ``.bench`` file from disk."""
    path = Path(path)
    return parse_bench_text(path.read_text(), name=path.stem, validate=validate)


def write_bench(circuit: Circuit, stream_or_path: TextIO | str | Path) -> None:
    """Serialize ``circuit`` back to ``.bench`` syntax.

    Round-trips with :func:`parse_bench_text` up to comment/whitespace.
    """
    if isinstance(stream_or_path, (str, Path)):
        with open(stream_or_path, "w") as fh:
            write_bench(circuit, fh)
        return
    out = stream_or_path
    out.write(f"# {circuit.name}\n")
    for pi in circuit.primary_inputs:
        out.write(f"INPUT({pi})\n")
    for po in circuit.primary_outputs:
        out.write(f"OUTPUT({po})\n")
    out.write("\n")
    for cell in circuit:
        if cell.is_pad:
            continue
        args = ", ".join(cell.fanin)
        out.write(f"{cell.name} = {cell.kind.value}({args})\n")


def bench_to_text(circuit: Circuit) -> str:
    """Serialize to a string (convenience wrapper over :func:`write_bench`)."""
    import io

    buf = io.StringIO()
    write_bench(circuit, buf)
    return buf.getvalue()
