"""Exception hierarchy for the repro library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class.  Subclasses communicate which subsystem rejected the
input or failed to converge.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class NetlistError(ReproError):
    """Malformed netlist: dangling pins, duplicate names, bad .bench syntax."""


class BenchParseError(NetlistError):
    """Syntax error while parsing an ISCAS89 ``.bench`` file."""

    def __init__(self, message: str, line_number: int | None = None):
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class PlacementError(ReproError):
    """Placement failure: region too small, legalization overflow, etc."""


class TimingError(ReproError):
    """Static timing failure: combinational cycles, unreachable pins."""


class CombinationalCycleError(TimingError):
    """The combinational portion of the netlist contains a cycle."""

    def __init__(self, cycle_members: list[str]):
        self.cycle_members = list(cycle_members)
        preview = ", ".join(self.cycle_members[:8])
        if len(self.cycle_members) > 8:
            preview += ", ..."
        super().__init__(f"combinational cycle through: {preview}")


class RotaryError(ReproError):
    """Rotary ring / tapping model failure."""


class TappingError(RotaryError):
    """No feasible tapping point could be constructed for a flip-flop."""


class CostMatrixError(ReproError):
    """Tapping-cost model rejected its inputs (e.g. unknown flip-flop names)."""


class OptimizationError(ReproError):
    """An optimization kernel failed (infeasible model, solver breakdown)."""


class InfeasibleError(OptimizationError):
    """The optimization model has no feasible solution."""


class UnboundedError(OptimizationError):
    """The optimization model is unbounded."""


class AssignmentError(ReproError):
    """Flip-flop to ring assignment failure (e.g., insufficient capacity)."""


class SkewOptimizationError(ReproError):
    """Skew scheduling failure: inconsistent timing constraints."""


class ClockTreeError(ReproError):
    """Clock-tree synthesis failure."""


class CheckError(ReproError):
    """Static checker misconfiguration: unknown rule code or severity."""


class SanitizerError(ReproError):
    """A runtime nondeterminism tripwire fired (see ``repro.lint``)."""


class ServerError(ReproError):
    """Flow-service failure (see ``repro.server``)."""


class SaturatedError(ServerError):
    """The service shed load: queue full or deadline not admissible.

    HTTP maps this to ``503`` with a ``Retry-After`` header of
    :attr:`retry_after_seconds`.
    """

    def __init__(self, message: str, retry_after_seconds: float = 1.0):
        self.retry_after_seconds = retry_after_seconds
        super().__init__(message)


class UnknownJobError(ServerError):
    """A job id that the service has no record of (HTTP 404)."""
