"""Ablation: guaranteed-slack fraction.

Stage 4 trades the permissible-range headroom for tapping cost; the
``slack_fraction`` knob decides how much slack stays guaranteed.  More
guaranteed slack means tighter skew constraints and (weakly) higher
tapping cost — this sweep quantifies the price of robustness.
"""

import pytest

from repro import FlowOptions, IntegratedFlow
from repro.experiments import format_table
from repro.netlist import generate_circuit, small_profile

from conftest import record_artifact

_CIRCUIT = generate_circuit(small_profile(num_cells=220, num_flipflops=40, seed=99))
_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 0.95)


@pytest.fixture(scope="module")
def slack_rows():
    rows = []
    for fraction in _FRACTIONS:
        res = IntegratedFlow(
            _CIRCUIT,
            options=FlowOptions(ring_grid_side=2, slack_fraction=fraction),
        ).run()
        rows.append(
            {
                "slack_fraction": fraction,
                "guaranteed_ps": res.slack_guaranteed,
                "tap_wl_um": res.final.tapping_wirelength,
                "afd_um": res.final.average_flipflop_distance,
            }
        )
    record_artifact(
        "Ablation: slack fraction",
        format_table(rows, "Ablation - guaranteed-slack fraction sweep"),
    )
    return rows


def test_bench_high_slack_flow(benchmark, slack_rows):
    assert slack_rows[0]["guaranteed_ps"] <= slack_rows[-1]["guaranteed_ps"]

    def run():
        return IntegratedFlow(
            _CIRCUIT,
            options=FlowOptions(ring_grid_side=2, slack_fraction=0.95),
        ).run()

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.slack_guaranteed >= 0.0
