"""Clock-tree topology generation by balanced geometric bipartition.

The classic "means and medians" style recursion: split the sink set along
its longer bounding-box dimension at the median, recurse, and pair the two
halves under a new internal node.  Produces the binary abstract topology
consumed by the zero-skew embedding in :mod:`repro.clocktree.dme`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ClockTreeError
from ..geometry import BBox, Point


@dataclass(slots=True)
class TopologyNode:
    """A node of the abstract clock-tree topology."""

    #: Sink name for leaves; synthesized name for internal nodes.
    name: str
    left: "TopologyNode | None" = None
    right: "TopologyNode | None" = None
    #: Leaf location (None for internal nodes until embedding).
    location: Point | None = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    def leaves(self) -> list["TopologyNode"]:
        if self.is_leaf:
            return [self]
        out: list[TopologyNode] = []
        if self.left is not None:
            out.extend(self.left.leaves())
        if self.right is not None:
            out.extend(self.right.leaves())
        return out

    def internal_count(self) -> int:
        if self.is_leaf:
            return 0
        count = 1
        if self.left is not None:
            count += self.left.internal_count()
        if self.right is not None:
            count += self.right.internal_count()
        return count


def build_topology(sinks: dict[str, Point]) -> TopologyNode:
    """Balanced-bipartition topology over the named sink locations."""
    if not sinks:
        raise ClockTreeError("cannot build a clock tree with no sinks")
    items = sorted(sinks.items())  # deterministic
    counter = [0]

    def recurse(chunk: list[tuple[str, Point]]) -> TopologyNode:
        if len(chunk) == 1:
            name, p = chunk[0]
            return TopologyNode(name=name, location=p)
        box = BBox.of_points([p for _, p in chunk])
        if box.width >= box.height:
            chunk = sorted(chunk, key=lambda item: (item[1].x, item[1].y))
        else:
            chunk = sorted(chunk, key=lambda item: (item[1].y, item[1].x))
        half = len(chunk) // 2
        left = recurse(chunk[:half])
        right = recurse(chunk[half:])
        counter[0] += 1
        return TopologyNode(name=f"__m{counter[0]}", left=left, right=right)

    return recurse(items)
