"""Rectilinear Steiner tree wirelength estimation.

HPWL is exact for nets with up to three pins but underestimates larger
nets; routed wirelength is better approximated by a rectilinear Steiner
minimal tree (RSMT).  This module provides:

* :func:`rectilinear_mst` — Prim's algorithm under the Manhattan metric
  (an RMST is at most 1.5x the RSMT);
* :func:`steiner_wirelength` — iterated 1-Steiner [Kahng/Robins]: insert
  the Hanan-grid point that shrinks the MST the most, repeat until no
  improvement.  Exact/optimal behaviour for degenerate cases, never worse
  than the plain MST, never better than HPWL's lower bound.
"""

from __future__ import annotations

import math
from typing import Sequence

from .hpwl import net_hpwl
from .point import Point


def rectilinear_mst(points: Sequence[Point]) -> float:
    """Total Manhattan length of a minimum spanning tree over ``points``.

    Dense Prim, O(n^2); net degrees in placement netlists are small.
    """
    n = len(points)
    if n < 2:
        return 0.0
    in_tree = [False] * n
    dist = [math.inf] * n
    dist[0] = 0.0
    total = 0.0
    for _ in range(n):
        best = -1
        best_d = math.inf
        for i in range(n):
            if not in_tree[i] and dist[i] < best_d:
                best, best_d = i, dist[i]
        in_tree[best] = True
        total += best_d
        for i in range(n):
            if not in_tree[i]:
                d = points[best].manhattan(points[i])
                if d < dist[i]:
                    dist[i] = d
    return total


def steiner_wirelength(points: Sequence[Point], max_rounds: int | None = None) -> float:
    """Iterated 1-Steiner RSMT approximation (Manhattan metric).

    For up to three pins this equals HPWL (both are exact).  For larger
    nets, Hanan-grid candidates are greedily inserted while they reduce
    the MST length.  ``max_rounds`` caps insertions (default: #pins).
    """
    pts = list(points)
    n = len(pts)
    if n < 2:
        return 0.0
    if n <= 3:
        return net_hpwl(pts)
    rounds = n if max_rounds is None else max_rounds
    current = rectilinear_mst(pts)
    terminals = list(pts)
    for _ in range(rounds):
        xs = sorted({p.x for p in terminals})
        ys = sorted({p.y for p in terminals})
        existing = {(p.x, p.y) for p in terminals}
        best_len = current
        best_point: Point | None = None
        for x in xs:
            for y in ys:
                if (x, y) in existing:
                    continue
                candidate = Point(x, y)
                length = rectilinear_mst(terminals + [candidate])
                if length < best_len - 1e-9:
                    best_len = length
                    best_point = candidate
        if best_point is None:
            break
        terminals.append(best_point)
        current = best_len
    return current


def net_steiner_wl(pins: Sequence[Point]) -> float:
    """Steiner wirelength of one net (HPWL fast path for tiny nets)."""
    if len(pins) <= 3:
        return net_hpwl(pins)
    return steiner_wirelength(pins)
