"""The design-rule registry: every ``RCK`` code and its check function.

A rule is a pure function ``DesignContext -> findings`` registered with a
stable code, a default severity, and the context layers it requires.  The
checker (:mod:`repro.analysis.checker`) selects applicable rules, applies
per-rule enable/disable and severity overrides, and aggregates findings.

Rules marked ``cheap`` are safe to run between Fig. 3 flow stages (linear
in flip-flops/rings/pairs, no LP or Bellman-Ford); the flow's
``check_invariants`` hook runs exactly that subset every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from ..errors import CheckError, TappingError
from ..netlist import Cell, CellKind, Circuit
from ..parallel import jobs_from_env
from ..rotary import (
    batch_solve_rings,
    best_tapping,
    ring_electrical,
    required_total_capacitance,
)
from ..timing import permissible_range
from .constraint_graph import SkewConstraintGraph
from .context import (
    LAYER_NETLIST,
    LAYER_PLACEMENT,
    LAYER_RINGS,
    LAYER_SCHEDULE,
    LAYER_TAPPINGS,
    LAYER_TIMING,
    DesignContext,
)
from .diagnostics import Diagnostic, Location, Severity

CheckFunction = Callable[[DesignContext], Iterable[Diagnostic]]


@dataclass(frozen=True, slots=True)
class Rule:
    """One registered design rule."""

    code: str
    name: str
    description: str
    default_severity: Severity
    requires: frozenset[str]
    #: Cheap rules may run between flow stages every iteration.
    cheap: bool
    check: CheckFunction

    def applicable(self, ctx: DesignContext) -> bool:
        return self.requires <= ctx.layers


_REGISTRY: dict[str, Rule] = {}


def rule(
    code: str,
    name: str,
    description: str,
    requires: Iterable[str] = (),
    severity: Severity = Severity.ERROR,
    cheap: bool = False,
) -> Callable[[CheckFunction], CheckFunction]:
    """Register a check function under ``code`` (decorator)."""

    def register(func: CheckFunction) -> CheckFunction:
        if code in _REGISTRY:
            raise CheckError(f"duplicate rule code {code}")
        _REGISTRY[code] = Rule(
            code=code,
            name=name,
            description=description,
            default_severity=severity,
            requires=frozenset(requires),
            cheap=cheap,
            check=func,
        )
        return func

    return register


def registered_rules() -> tuple[Rule, ...]:
    """All rules, ordered by code."""
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def get_rule(code: str) -> Rule:
    try:
        return _REGISTRY[code]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise CheckError(f"unknown rule code {code!r}; known: {known}") from None


def _diag(
    r: str, message: str, kind: str, name: str, hint: str = ""
) -> Diagnostic:
    meta = _REGISTRY[r]
    return Diagnostic(
        code=r,
        rule=meta.name,
        severity=meta.default_severity,
        message=message,
        location=Location(kind=kind, name=name),
        hint=hint,
    )


def _fanin_sinks(circuit: Circuit) -> dict[str, list[str]]:
    """Signal -> reading cells, derived without triggering validation."""
    sinks: dict[str, list[str]] = {}
    for cell in circuit.cells.values():
        for sig in cell.fanin:
            sinks.setdefault(sig, []).append(cell.name)
    return sinks


# ----------------------------------------------------------------------
# RCK1xx: netlist structure
# ----------------------------------------------------------------------
@rule(
    "RCK101",
    "dangling-fanin",
    "A cell reads a signal no cell drives (or an OUTPUT pad).",
    requires=(LAYER_NETLIST,),
)
def check_dangling_fanin(ctx: DesignContext) -> Iterator[Diagnostic]:
    assert ctx.circuit is not None
    for cell in ctx.circuit.cells.values():
        if cell.kind is CellKind.OUTPUT:
            continue  # undriven primary outputs are RCK102's finding
        for sig in cell.fanin:
            driver = ctx.circuit.cells.get(sig)
            if driver is None:
                yield _diag(
                    "RCK101",
                    f"cell {cell.name!r} reads undefined signal {sig!r}",
                    "cell",
                    cell.name,
                    hint="declare INPUT(...) or define the driving gate",
                )
            elif driver.kind is CellKind.OUTPUT:
                yield _diag(
                    "RCK101",
                    f"cell {cell.name!r} reads from OUTPUT pad {sig!r}",
                    "cell",
                    cell.name,
                    hint="read the driven signal, not the pad",
                )


@rule(
    "RCK102",
    "undriven-primary-output",
    "A primary output observes a signal no cell drives.",
    requires=(LAYER_NETLIST,),
)
def check_undriven_output(ctx: DesignContext) -> Iterator[Diagnostic]:
    assert ctx.circuit is not None
    for sig in ctx.circuit.primary_outputs:
        if sig not in ctx.circuit:
            yield _diag(
                "RCK102",
                f"primary output observes undefined signal {sig!r}",
                "net",
                sig,
                hint="define the driving cell or drop the OUTPUT declaration",
            )


@rule(
    "RCK103",
    "floating-driver",
    "A cell's output drives nothing and is not a primary output.",
    requires=(LAYER_NETLIST,),
    severity=Severity.WARNING,
)
def check_floating_driver(ctx: DesignContext) -> Iterator[Diagnostic]:
    assert ctx.circuit is not None
    sinks = _fanin_sinks(ctx.circuit)
    observed = set(ctx.circuit.primary_outputs)
    for cell in ctx.circuit.cells.values():
        if cell.kind is CellKind.OUTPUT:
            continue
        if cell.name not in sinks and cell.name not in observed:
            kind = "flip-flop" if cell.is_flipflop else "cell"
            yield _diag(
                "RCK103",
                f"output of {cell.name!r} drives nothing",
                kind,
                cell.name,
                hint="remove dead logic or observe the signal as a primary output",
            )


# ----------------------------------------------------------------------
# RCK2xx: placement
# ----------------------------------------------------------------------
def _placeable(circuit: Circuit | None, name: str) -> bool:
    """Whether ``name`` is a standard cell (pads may legally collide)."""
    if circuit is None:
        return True
    cell: Cell | None = circuit.cells.get(name)
    return cell is None or not cell.is_pad


@rule(
    "RCK201",
    "overlapping-cells",
    "Two standard cells occupy the same placement site.",
    requires=(LAYER_PLACEMENT,),
)
def check_overlapping_cells(ctx: DesignContext) -> Iterator[Diagnostic]:
    assert ctx.positions is not None
    seen: dict[tuple[int, int], str] = {}
    for name in sorted(ctx.positions):
        if not _placeable(ctx.circuit, name):
            continue
        p = ctx.positions[name]
        key = (round(p.x * 1000.0), round(p.y * 1000.0))
        other = seen.get(key)
        if other is None:
            seen[key] = name
        else:
            yield _diag(
                "RCK201",
                f"cells {other!r} and {name!r} overlap at "
                f"({p.x:.3f}, {p.y:.3f})",
                "cell",
                name,
                hint="re-run legalization; overlapping cells corrupt "
                "wirelength and timing estimates",
            )


@rule(
    "RCK202",
    "cell-outside-region",
    "A placed cell lies outside the die outline.",
    requires=(LAYER_PLACEMENT,),
)
def check_cell_outside_region(ctx: DesignContext) -> Iterator[Diagnostic]:
    assert ctx.positions is not None
    die = ctx.die_bbox
    if die is None:
        return
    for name in sorted(ctx.positions):
        if not _placeable(ctx.circuit, name):
            continue  # pads sit on the periphery by construction
        p = ctx.positions[name]
        if not die.contains(p):
            yield _diag(
                "RCK202",
                f"cell {name!r} at ({p.x:.3f}, {p.y:.3f}) is outside the die "
                f"[{die.xlo:.1f}, {die.ylo:.1f}] x [{die.xhi:.1f}, {die.yhi:.1f}]",
                "cell",
                name,
                hint="clamp the placement to the region or regrow the die",
            )


@rule(
    "RCK203",
    "unplaced-cell",
    "A standard cell has no placement location.",
    requires=(LAYER_NETLIST, LAYER_PLACEMENT),
)
def check_unplaced_cell(ctx: DesignContext) -> Iterator[Diagnostic]:
    assert ctx.circuit is not None and ctx.positions is not None
    for cell in ctx.circuit.standard_cells:
        if cell.name not in ctx.positions:
            kind = "flip-flop" if cell.is_flipflop else "cell"
            yield _diag(
                "RCK203",
                f"standard cell {cell.name!r} has no placement",
                kind,
                cell.name,
                hint="every gate and flip-flop must be placed before "
                "timing or assignment runs",
            )


# ----------------------------------------------------------------------
# RCK3xx: ring array
# ----------------------------------------------------------------------
@rule(
    "RCK301",
    "ring-capacity-exceeded",
    "A ring hosts more flip-flops than its Section V capacity U_j.",
    requires=(LAYER_RINGS,),
    cheap=True,
)
def check_ring_capacity(ctx: DesignContext) -> Iterator[Diagnostic]:
    assert ctx.array is not None and ctx.ring_of is not None
    capacities = ctx.ring_capacities()
    if capacities is None:
        return
    occupancy = [0] * ctx.array.num_rings
    for ring_id in ctx.ring_of.values():
        if 0 <= ring_id < len(occupancy):
            occupancy[ring_id] += 1
        else:
            yield _diag(
                "RCK301",
                f"assignment references ring {ring_id} but the array has "
                f"{ctx.array.num_rings} rings",
                "ring",
                str(ring_id),
                hint="the assignment and ring array are out of sync",
            )
    for ring_id, count in enumerate(occupancy):
        cap = capacities[ring_id] if ring_id < len(capacities) else 0
        if count > cap:
            yield _diag(
                "RCK301",
                f"ring {ring_id} hosts {count} flip-flops, capacity U_j = {cap}",
                "ring",
                str(ring_id),
                hint="raise capacity_headroom or add rings (larger grid side)",
            )


@rule(
    "RCK302",
    "fosc-budget-exceeded",
    "A ring's load capacitance pushes f_osc = 1/(2 sqrt(LC)) below target.",
    requires=(LAYER_RINGS, LAYER_TAPPINGS),
    cheap=True,
)
def check_fosc_budget(ctx: DesignContext) -> Iterator[Diagnostic]:
    assert ctx.array is not None and ctx.ring_of is not None
    assert ctx.tappings is not None
    stubs: dict[int, list[float]] = {}
    for ff, ring_id in ctx.ring_of.items():
        sol = ctx.tappings.get(ff)
        if sol is not None and 0 <= ring_id < ctx.array.num_rings:
            stubs.setdefault(ring_id, []).append(sol.wirelength)
    for ring_id, lengths in sorted(stubs.items()):
        ring = ctx.array[ring_id]
        elec = ring_electrical(ring, lengths, ctx.tech)
        budget = required_total_capacitance(ring, ctx.period, ctx.tech)
        excess = elec.ring_cap_ff + elec.load_cap_ff - budget
        if excess > 1e-9:
            yield _diag(
                "RCK302",
                f"ring {ring_id} total capacitance "
                f"{elec.ring_cap_ff + elec.load_cap_ff:.1f} fF exceeds the "
                f"{budget:.1f} fF eq. (2) budget by {excess:.1f} fF "
                f"(f_osc {elec.frequency_ghz:.3f} GHz)",
                "ring",
                str(ring_id),
                hint="rebalance flip-flops (Section VI min-max assignment) "
                "or shorten stubs",
            )


@rule(
    "RCK303",
    "unassigned-flipflop",
    "A flip-flop has no ring assignment.",
    requires=(LAYER_NETLIST, LAYER_RINGS),
    cheap=True,
)
def check_unassigned_flipflop(ctx: DesignContext) -> Iterator[Diagnostic]:
    assert ctx.circuit is not None and ctx.ring_of is not None
    for ff in ctx.circuit.flip_flops:
        if ff.name not in ctx.ring_of:
            yield _diag(
                "RCK303",
                f"flip-flop {ff.name!r} is not assigned to any ring",
                "flip-flop",
                ff.name,
                hint="every flip-flop must tap a ring; re-run stage 3",
            )


# ----------------------------------------------------------------------
# RCK4xx: skew schedule and constraint system
# ----------------------------------------------------------------------
@rule(
    "RCK401",
    "infeasible-permissible-range",
    "A sequential pair's permissible skew range is empty at the "
    "guaranteed slack.",
    requires=(LAYER_TIMING,),
    cheap=True,
)
def check_permissible_ranges(ctx: DesignContext) -> Iterator[Diagnostic]:
    assert ctx.pairs is not None
    for (i, j), bounds in ctx.pairs.items():
        r = permissible_range(i, j, bounds, ctx.period, ctx.tech, ctx.slack)
        if not r.feasible:
            yield _diag(
                "RCK401",
                f"pair {i} -> {j}: permissible range "
                f"[{r.lo:.3f}, {r.hi:.3f}] is empty "
                f"(D_max {bounds.d_max:.1f}, D_min {bounds.d_min:.1f} ps "
                f"at slack {ctx.slack:.1f})",
                "pair",
                f"{i}->{j}",
                hint="the long path exceeds the period budget: speed up the "
                "path, stretch the period, or lower the guaranteed slack",
            )


@rule(
    "RCK402",
    "negative-cycle-in-skew-constraint-graph",
    "The Section VII setup/hold difference constraints contradict each "
    "other around a cycle.",
    requires=(LAYER_TIMING,),
)
def check_negative_cycle(ctx: DesignContext) -> Iterator[Diagnostic]:
    assert ctx.pairs is not None
    graph = SkewConstraintGraph.from_pairs(ctx.pairs, ctx.period, ctx.tech)
    cycle = graph.negative_cycle(slack=ctx.slack)
    if cycle is not None:
        yield _diag(
            "RCK402",
            f"skew constraint graph has a negative cycle at slack "
            f"{ctx.slack:.1f} ps: {cycle.describe()}",
            "design",
            ctx.name,
            hint="no schedule satisfies these pairs simultaneously; "
            "relax the period or retime the cycle's paths",
        )


@rule(
    "RCK403",
    "skew-outside-permissible-range",
    "A scheduled skew violates its pair's permissible range.",
    requires=(LAYER_TIMING, LAYER_SCHEDULE),
    cheap=True,
)
def check_schedule_in_range(ctx: DesignContext) -> Iterator[Diagnostic]:
    assert ctx.pairs is not None and ctx.schedule is not None
    for (i, j), bounds in ctx.pairs.items():
        if i not in ctx.schedule or j not in ctx.schedule:
            continue  # RCK303/RCK501 cover missing entries
        r = permissible_range(i, j, bounds, ctx.period, ctx.tech, ctx.slack)
        skew = ctx.schedule[i] - ctx.schedule[j]
        if not r.contains(skew, tol=1e-6):
            side = "setup (upper)" if skew > r.hi else "hold (lower)"
            yield _diag(
                "RCK403",
                f"pair {i} -> {j}: skew {skew:.3f} ps violates the {side} "
                f"bound of [{r.lo:.3f}, {r.hi:.3f}]",
                "pair",
                f"{i}->{j}",
                hint="re-run skew optimization; the schedule and timing "
                "are out of sync",
            )


# ----------------------------------------------------------------------
# RCK5xx: tapping realizability
# ----------------------------------------------------------------------
@rule(
    "RCK501",
    "unreachable-tapping-target",
    "A flip-flop's skew target cannot be realized as a Section III "
    "tapping stub on its assigned ring (or the stored solution is stale).",
    requires=(LAYER_RINGS, LAYER_SCHEDULE, LAYER_PLACEMENT),
)
def check_tapping_targets(ctx: DesignContext) -> Iterator[Diagnostic]:
    assert ctx.array is not None and ctx.ring_of is not None
    assert ctx.schedule is not None and ctx.positions is not None
    period = ctx.period
    # Flip-flops with no stored solution are batched into one vectorized
    # pairs solve below; the per-flip-flop scalar solver would make this
    # rule the checker's bottleneck on 100k-cell contexts.
    pending: list[tuple[str, int, float]] = []
    for ff in sorted(ctx.ring_of):
        ring_id = ctx.ring_of[ff]
        if ff not in ctx.schedule or ff not in ctx.positions:
            continue  # RCK203/RCK303 cover the missing layers
        if not 0 <= ring_id < ctx.array.num_rings:
            continue  # RCK301 reports out-of-range ring ids
        target = ctx.schedule[ff] % period
        sol = ctx.tappings.get(ff) if ctx.tappings is not None else None
        if sol is None:
            pending.append((ff, ring_id, target))
            continue
        if sol.ring_id != ring_id:
            yield _diag(
                "RCK501",
                f"flip-flop {ff!r} is assigned to ring {ring_id} but its "
                f"tapping solution taps ring {sol.ring_id}",
                "flip-flop",
                ff,
                hint="stale artifact: re-realize tappings after "
                "reassignment",
            )
            continue
        drift = abs(sol.target_delay - target)
        drift = min(drift, period - drift)  # phase distance
        if drift > 1e-6:
            yield _diag(
                "RCK501",
                f"flip-flop {ff!r}: tapping solution realizes "
                f"{sol.target_delay:.3f} ps but the schedule asks for "
                f"{target:.3f} ps",
                "flip-flop",
                ff,
                hint="stale artifact: re-realize tappings after "
                "rescheduling",
            )
    if not pending:
        return
    import numpy as np

    rids = np.array([ring_id for _, ring_id, _ in pending], dtype=np.intp)
    px = np.array([ctx.positions[ff].x for ff, _, _ in pending])
    py = np.array([ctx.positions[ff].y for ff, _, _ in pending])
    targets = np.array([target for _, _, target in pending])
    # The checker has no FlowOptions in scope, so the worker count comes
    # from REPRO_JOBS alone (1 when unset); findings are bit-identical
    # for any value.
    result = batch_solve_rings(
        ctx.array, rids, px, py, targets, ctx.tech, jobs=jobs_from_env()
    )
    for p in np.flatnonzero(~result.feasible):
        ff, ring_id, target = pending[int(p)]
        # Re-run the scalar solver for its exact diagnostic text; the
        # batch kernel is bit-identical, so only infeasible (rare) rows
        # pay this.
        try:
            best_tapping(ctx.array[ring_id], ctx.positions[ff], target, ctx.tech)
        except TappingError as exc:
            yield _diag(
                "RCK501",
                f"flip-flop {ff!r}: no feasible tapping on ring {ring_id} "
                f"for target {target:.3f} ps ({exc})",
                "flip-flop",
                ff,
                hint="assign the flip-flop to a reachable ring or adjust "
                "its skew target",
            )
