"""Tests for unit conventions and technology constants."""

import pytest

from repro.constants import (
    DEFAULT_TECHNOLOGY,
    Technology,
    frequency_ghz,
    oscillation_period_ps,
    period_ps,
)


class TestConversions:
    def test_frequency_period_roundtrip(self):
        assert frequency_ghz(1000.0) == 1.0
        assert period_ps(2.0) == 500.0
        assert frequency_ghz(period_ps(3.3)) == pytest.approx(3.3)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            frequency_ghz(0.0)
        with pytest.raises(ValueError):
            period_ps(-1.0)

    def test_oscillation_period_units(self):
        # L = 1000 pH = 1 nH, C = 1000 fF = 1 pF -> sqrt(LC) ~ 31.6 ps,
        # period = 63.2 ps.
        t = oscillation_period_ps(1000.0, 1000.0)
        assert t == pytest.approx(63.245, rel=1e-3)

    def test_oscillation_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            oscillation_period_ps(0.0, 10.0)


class TestTechnology:
    def test_wire_delay_quadratic_in_length(self):
        tech = DEFAULT_TECHNOLOGY
        d1 = tech.wire_delay(100.0)
        d2 = tech.wire_delay(200.0)
        assert d2 == pytest.approx(4.0 * d1)

    def test_wire_delay_with_load(self):
        tech = DEFAULT_TECHNOLOGY
        assert tech.wire_delay(100.0, 10.0) > tech.wire_delay(100.0, 0.0)

    def test_wire_cap_linear(self):
        tech = DEFAULT_TECHNOLOGY
        assert tech.wire_cap(200.0) == pytest.approx(2 * tech.wire_cap(100.0))

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_TECHNOLOGY.vdd = 0.9  # type: ignore[misc]

    def test_custom_technology(self):
        tech = Technology(unit_resistance=0.1, unit_capacitance=0.2)
        assert tech.wire_res(10.0) == pytest.approx(1.0)
        assert tech.wire_cap(10.0) == pytest.approx(2.0)
