"""Experiment harness reproducing every table and figure of the paper."""

from .figures import (
    TappingCurve,
    fig1_array_equal_phase_points,
    fig1_ring_phases,
    fig2_tapping_curve,
    fig3_flow_convergence,
    fig4_network_structure,
    fig5_greedy_rounding,
)
from .benchagg import (
    TRAJECTORY_FILENAME,
    TRAJECTORY_FORMAT_VERSION,
    collect_bench_files,
    update_trajectory,
)
from .checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointStore,
    experiment_key,
)
from .motivation import ZeroSkewComparison, zero_skew_comparison
from .parallel import (
    ParallelOptions,
    ParallelSuiteRunner,
    SuiteRunReport,
    TaskFailure,
    parallel_options_from_flags,
    run_parallel_suite,
)
from .runner import (
    CircuitExperiment,
    ExperimentSuite,
    PowerBreakdown,
    profile_for,
)
from .tables import (
    format_table,
    table1_integrality_gap,
    table2_test_cases,
    table3_base_case,
    table4_network_flow,
    table5_load_capacitance,
    table6_power,
    table7_wcp,
)

__all__ = [
    "ExperimentSuite",
    "CircuitExperiment",
    "PowerBreakdown",
    "profile_for",
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointStore",
    "experiment_key",
    "TRAJECTORY_FILENAME",
    "TRAJECTORY_FORMAT_VERSION",
    "collect_bench_files",
    "update_trajectory",
    "ParallelOptions",
    "ParallelSuiteRunner",
    "SuiteRunReport",
    "TaskFailure",
    "parallel_options_from_flags",
    "run_parallel_suite",
    "table1_integrality_gap",
    "table2_test_cases",
    "table3_base_case",
    "table4_network_flow",
    "table5_load_capacitance",
    "table6_power",
    "table7_wcp",
    "format_table",
    "TappingCurve",
    "fig1_ring_phases",
    "fig1_array_equal_phase_points",
    "fig2_tapping_curve",
    "fig3_flow_convergence",
    "fig4_network_structure",
    "fig5_greedy_rounding",
    "ZeroSkewComparison",
    "zero_skew_comparison",
]
