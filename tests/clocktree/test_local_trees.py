"""Tests for local clock trees below ring tapping points (§IX extension)."""

import pytest

from repro import FlowOptions, IntegratedFlow
from repro.clocktree import LocalTreeOptions, build_local_trees
from repro.constants import DEFAULT_TECHNOLOGY
from repro.netlist import generate_circuit, small_profile
from repro.rotary import stub_delay
from repro.timing import SequentialTiming, validate_schedule

TECH = DEFAULT_TECHNOLOGY
T = 1000.0


@pytest.fixture(scope="module")
def flow_setup():
    circuit = generate_circuit(small_profile(num_cells=220, num_flipflops=40, seed=21))
    result = IntegratedFlow(circuit, options=FlowOptions(ring_grid_side=2)).run()
    timing = SequentialTiming(circuit, result.positions, TECH)
    return circuit, result, timing


def build(flow_setup, **kwargs):
    _, result, timing = flow_setup
    opts = LocalTreeOptions(**kwargs) if kwargs else None
    return build_local_trees(
        result.assignment,
        result.array,
        result.positions,
        result.schedule.targets,
        timing.pairs,
        TECH,
        period=T,
        slack=0.0,
        options=opts,
    )


class TestLocalTrees:
    def test_partition_is_complete(self, flow_setup):
        circuit, result, _ = flow_setup
        lt = build(flow_setup)
        in_trees = {ff for tree in lt.trees for ff in tree.members}
        assert in_trees | set(lt.direct_stubs) == set(result.assignment.ring_of)
        assert not in_trees & set(lt.direct_stubs)

    def test_never_worse_than_baseline(self, flow_setup):
        """The per-cluster economics test guarantees non-negative saving."""
        lt = build(flow_setup)
        assert lt.total_wirelength <= lt.baseline_wirelength + 1e-6
        assert lt.wirelength_saving >= -1e-9

    def test_trees_have_min_size(self, flow_setup):
        lt = build(flow_setup, min_cluster_size=3)
        assert all(len(t.members) >= 3 for t in lt.trees)

    def test_members_share_ring(self, flow_setup):
        _, result, _ = flow_setup
        lt = build(flow_setup)
        for tree in lt.trees:
            rings = {result.assignment.ring_of[ff] for ff in tree.members}
            assert rings == {tree.ring_id}

    def test_merged_schedule_is_feasible(self, flow_setup):
        _, _, timing = flow_setup
        lt = build(flow_setup)
        assert validate_schedule(lt.schedule, timing.pairs, T, TECH, slack=0.0) == []

    def test_tree_members_share_target(self, flow_setup):
        lt = build(flow_setup)
        for tree in lt.trees:
            values = {lt.schedule[ff] for ff in tree.members}
            assert len(values) == 1
            assert values == {tree.common_target}

    def test_root_tapping_delivers_common_target(self, flow_setup):
        """Ring delay at root tap + root stub + subtree delay == target."""
        _, result, _ = flow_setup
        lt = build(flow_setup)
        for tree in lt.trees:
            ring = result.array[tree.ring_id]
            seg = ring.segments()[tree.root_tapping.segment_index]
            root_load = tree.tree.root.subtree_cap
            delivered = (
                seg.t0
                - tree.root_tapping.periods_borrowed * T
                + seg.rho * tree.root_tapping.x
                + stub_delay(tree.root_tapping.wirelength, TECH, root_load)
                + tree.tree.source_delay
            )
            assert delivered == pytest.approx(tree.common_target % T, abs=1e-5)

    def test_zero_radius_yields_no_trees(self, flow_setup):
        lt = build(flow_setup, radius=0.0, target_tolerance=0.0)
        assert lt.trees == ()
        assert lt.total_wirelength == pytest.approx(lt.baseline_wirelength)

    def test_skew_bound_option(self, flow_setup):
        """A skew budget keeps the result valid and never hurts the
        guarantee (savings are instance-dependent)."""
        lt = build(flow_setup, skew_bound=10.0)
        assert lt.total_wirelength <= lt.baseline_wirelength + 1e-6
        _, _, timing = flow_setup
        # Conservative validation: merged schedule feasible with the
        # budget charged as extra slack.
        assert (
            validate_schedule(lt.schedule, timing.pairs, T, TECH, slack=10.0)
            == []
        )

    def test_wirelength_accounting(self, flow_setup):
        _, result, _ = flow_setup
        lt = build(flow_setup)
        recomputed = sum(t.wirelength for t in lt.trees) + sum(
            result.assignment.solutions[ff].wirelength for ff in lt.direct_stubs
        )
        assert lt.total_wirelength == pytest.approx(recomputed)
