"""Reporter tests: text/json round-trips and SARIF 2.1.0 conformance.

The SARIF check validates against an embedded subset of the official
2.1.0 schema — the properties GitHub code scanning actually requires —
so the test runs offline.
"""

import json

import jsonschema
import pytest

from repro.analysis import (
    CheckReport,
    Diagnostic,
    Location,
    Severity,
    registered_rules,
    render_json,
    render_sarif,
    render_text,
    sarif_document,
)
from repro.analysis.reporters import SARIF_VERSION, TOOL_NAME

# The load-bearing subset of the SARIF 2.1.0 schema: everything ``repro
# check --sarif`` emits, with the spec's required properties enforced.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "version": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "name": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {
                                                            "enum": [
                                                                "none",
                                                                "note",
                                                                "warning",
                                                                "error",
                                                            ]
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "invocations": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["executionSuccessful"],
                            "properties": {
                                "executionSuccessful": {"type": "boolean"}
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {"type": "integer", "minimum": 0},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {"text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "logicalLocations": {
                                                "type": "array",
                                                "items": {
                                                    "type": "object",
                                                    "properties": {
                                                        "name": {"type": "string"},
                                                        "fullyQualifiedName": {
                                                            "type": "string"
                                                        },
                                                        "kind": {"type": "string"},
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def _report(with_findings=True):
    findings = ()
    if with_findings:
        findings = (
            Diagnostic(
                code="RCK101",
                rule="dangling-fanin",
                severity=Severity.ERROR,
                message="cell 'g1' reads undefined signal 'x'",
                location=Location("cell", "g1"),
                hint="declare INPUT(x)",
            ),
            Diagnostic(
                code="RCK103",
                rule="floating-driver",
                severity=Severity.WARNING,
                message="output of 'g2' drives nothing",
                location=Location("cell", "g2"),
            ),
        )
    return CheckReport(
        design="unit",
        findings=findings,
        rules_run=("RCK101", "RCK102", "RCK103"),
        rules_skipped=("RCK201",),
    )


class TestText:
    def test_lists_findings_and_summary(self):
        text = render_text(_report())
        assert "RCK101" in text
        assert "(hint: declare INPUT(x))" in text
        assert "2 finding(s)" in text
        assert "3 rule(s) run, 1 skipped" in text

    def test_clean_report(self):
        text = render_text(_report(with_findings=False))
        assert "0 finding(s) (clean)" in text


class TestJson:
    def test_document_structure(self):
        doc = json.loads(render_json(_report()))
        assert doc["design"] == "unit"
        assert doc["counts_by_code"] == {"RCK101": 1, "RCK103": 1}
        assert doc["counts_by_severity"] == {"error": 1, "warning": 1}
        assert doc["rules_skipped"] == ["RCK201"]
        assert doc["findings"][0]["code"] == "RCK101"


class TestSarif:
    def test_validates_against_schema_subset(self):
        doc = sarif_document(_report())
        jsonschema.validate(doc, SARIF_SUBSET_SCHEMA)

    def test_clean_report_validates_too(self):
        doc = sarif_document(_report(with_findings=False))
        jsonschema.validate(doc, SARIF_SUBSET_SCHEMA)
        assert doc["runs"][0]["results"] == []
        assert doc["runs"][0]["invocations"][0]["executionSuccessful"] is True

    def test_version_and_tool(self):
        doc = sarif_document(_report())
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == TOOL_NAME
        assert len(driver["rules"]) == len(registered_rules())

    def test_results_reference_rule_descriptors(self):
        doc = sarif_document(_report())
        driver = doc["runs"][0]["tool"]["driver"]
        for result in doc["runs"][0]["results"]:
            idx = result["ruleIndex"]
            assert driver["rules"][idx]["id"] == result["ruleId"]

    def test_levels_and_messages(self):
        doc = sarif_document(_report())
        first, second = doc["runs"][0]["results"]
        assert first["level"] == "error"
        assert "Hint: declare INPUT(x)" in first["message"]["text"]
        assert second["level"] == "warning"
        assert doc["runs"][0]["invocations"][0]["executionSuccessful"] is False

    def test_logical_locations(self):
        doc = sarif_document(_report())
        loc = doc["runs"][0]["results"][0]["locations"][0]["logicalLocations"][0]
        assert loc["name"] == "g1"
        assert loc["fullyQualifiedName"] == "unit/cell/g1"
        assert loc["kind"] == "cell"

    def test_render_sarif_is_valid_json(self):
        doc = json.loads(render_sarif(_report()))
        jsonschema.validate(doc, SARIF_SUBSET_SCHEMA)


@pytest.mark.parametrize("severity,level", [
    (Severity.ERROR, "error"),
    (Severity.WARNING, "warning"),
    (Severity.INFO, "note"),
])
def test_severity_level_mapping(severity, level):
    assert severity.sarif_level == level
