"""Traditional max-slack skew optimization (Section VII, eqs. (5)-(7)).

Fishburn's formulation: find clock arrival targets ``t_i`` maximizing the
common slack ``M`` subject to long-path (setup) and short-path (hold)
constraints over all sequentially adjacent flip-flop pairs:

    maximize   M
    subject to t_i - t_j + M <= T - D_max^ij - t_setup     (i -> j)
               t_i - t_j >= M + t_hold - D_min^ij          (i -> j)

Solvable by LP [4] or graph algorithms [23], [24]; both are provided and
cross-checked in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Mapping

from ..constants import Technology
from ..errors import SkewOptimizationError
from ..opt.diffconstraints import maximize_slack
from ..opt.lp import LinearProgram
from ..timing import PathBounds, skew_constraints


@dataclass(frozen=True, slots=True)
class SkewSchedule:
    """A clock-arrival schedule with its guaranteed slack."""

    targets: dict[str, float]
    slack: float

    def __getitem__(self, ff: str) -> float:
        return self.targets[ff]

    def normalized(self, period: float) -> "SkewSchedule":
        """Targets folded into ``[0, T)`` — phase is all the rotary ring
        needs, and folding keeps the tapping solver's Case 1 counters
        small.  Skews (differences) are preserved only modulo ``T``,
        which is exactly the rotary-clock semantics."""
        return SkewSchedule(
            targets={k: v % period for k, v in self.targets.items()},
            slack=self.slack,
        )


def _skew_coeffs(plus: str, minus: str, extra: dict[str, float]) -> dict[str, float]:
    """Coefficients of ``t_plus - t_minus`` plus extra terms, summing
    collisions (so self-loop pairs cancel instead of clobbering)."""
    coeffs = dict(extra)
    for var, coef in ((f"t_{plus}", 1.0), (f"t_{minus}", -1.0)):
        coeffs[var] = coeffs.get(var, 0.0) + coef
    return {v: c for v, c in coeffs.items() if c != 0.0}


def max_slack_schedule(
    pairs: Mapping[tuple[str, str], PathBounds],
    flip_flops: list[str],
    period: float,
    tech: Technology,
    backend: Literal["lp", "graph"] = "lp",
) -> SkewSchedule:
    """Solve the max-slack problem; returns targets plus the optimum M."""
    if not flip_flops:
        raise SkewOptimizationError("no flip-flops to schedule")
    if backend == "graph":
        constraints = skew_constraints(pairs, period, tech)
        slack, schedule = maximize_slack(flip_flops, constraints)
        # Unconstrained flip-flops default to zero skew.
        targets = {ff: schedule.get(ff, 0.0) for ff in flip_flops}
        return SkewSchedule(targets=targets, slack=slack)
    if backend != "lp":
        raise SkewOptimizationError(f"unknown skew backend {backend!r}")

    lp = LinearProgram("max_slack_skew")
    for ff in flip_flops:
        lp.add_var(f"t_{ff}", lb=float("-inf"))
    # M is capped at one period: an acyclic sequential graph would make
    # the slack unbounded, and slack beyond T has no physical meaning.
    lp.add_var("M", lb=float("-inf"), ub=period)
    for (i, j), b in pairs.items():
        # t_i - t_j + M <= T - Dmax - setup.  Self-loop pairs (i == j)
        # cancel the t terms and constrain M alone.
        lp.add_constraint(
            _skew_coeffs(i, j, {"M": 1.0}),
            "<=",
            period - b.d_max - tech.setup_time,
        )
        # t_i - t_j >= M + hold - Dmin  <=>  t_j - t_i + M <= Dmin - hold
        lp.add_constraint(
            _skew_coeffs(j, i, {"M": 1.0}),
            "<=",
            b.d_min - tech.hold_time,
        )
    # Pin one reference to remove the schedule's translation freedom.
    lp.add_constraint({f"t_{flip_flops[0]}": 1.0}, "==", 0.0)
    lp.set_objective({"M": -1.0})  # maximize M
    sol = lp.solve()
    targets = {ff: sol.values[f"t_{ff}"] for ff in flip_flops}
    return SkewSchedule(targets=targets, slack=sol.values["M"])


def zero_skew_schedule(flip_flops: list[str]) -> SkewSchedule:
    """The conventional-design reference: every target zero."""
    return SkewSchedule(targets={ff: 0.0 for ff in flip_flops}, slack=0.0)
