"""Fig. 2: the two-parabola tapping-delay curve and its four target cases.

The timed kernels are a sweep of the Section III tapping solver over the
four cases on a real ring (the operation Fig. 2 illustrates), and the
batched NumPy kernel solving the same problem for a whole population of
flip-flops at once.  The batched benchmark doubles as a perf guard: it
fails if the vectorized kernel is slower than the scalar reference on
the same inputs.
"""

import time

import numpy as np
import pytest

from repro.constants import DEFAULT_TECHNOLOGY
from repro.errors import TappingError
from repro.experiments import fig2_tapping_curve, format_table
from repro.geometry import Point
from repro.rotary import (
    RotaryRing,
    batch_solve,
    batch_tapping_wirelengths,
    best_tapping,
)

from conftest import record_artifact


@pytest.fixture(scope="module")
def fig2_artifact():
    curve = fig2_tapping_curve(DEFAULT_TECHNOLOGY)
    cases = curve.case_targets()
    rows = [
        {"case": name, "target_ps": target}
        for name, target in cases.items()
    ]
    rows.append({"case": "curve_min", "target_ps": curve.min_delay_ps})
    rows.append({"case": "curve_max", "target_ps": curve.max_delay_ps})
    rows.append({"case": "joint_x_um", "target_ps": curve.joint_x_um})
    record_artifact(
        "Fig. 2",
        format_table(rows, "Fig. 2 - tapping-delay curve t_f(x) landmarks"),
    )
    return curve


def test_bench_tapping_solver_cases(benchmark, fig2_artifact):
    assert fig2_artifact.min_delay_ps < fig2_artifact.max_delay_ps
    ring = RotaryRing(0, Point(200.0, 200.0), 150.0, period=1000.0)
    ff = Point(260.0, 420.0)
    targets = [5.0, 150.0, 420.0, 700.0, 985.0]

    def solve_all():
        return [best_tapping(ring, ff, t, DEFAULT_TECHNOLOGY) for t in targets]

    sols = benchmark(solve_all)
    assert len(sols) == len(targets)
    assert all(s.wirelength >= 0.0 for s in sols)


def test_bench_vectorized_tapping_kernel(benchmark, fig2_artifact):
    """Batched solve of 512 flip-flops against one ring.

    Guards the tentpole optimization: the vectorized kernel must not be
    slower than the equivalent scalar sweep, and must agree with it
    entry-by-entry (infeasible entries included).
    """
    assert fig2_artifact.min_delay_ps < fig2_artifact.max_delay_ps
    ring = RotaryRing(0, Point(200.0, 200.0), 150.0, period=1000.0)
    rng = np.random.default_rng(20060306)
    n = 512
    px = rng.uniform(-100.0, 500.0, n)
    py = rng.uniform(-100.0, 500.0, n)
    targets = rng.uniform(0.0, 1000.0, n)

    def solve_batch():
        return batch_solve(ring, px, py, targets, DEFAULT_TECHNOLOGY)

    solve_batch()  # touch the kernel's working set before timing
    result = benchmark(solve_batch)

    points = [Point(x, y) for x, y in zip(px, py)]

    def solve_scalar():
        out = np.full(n, np.inf)
        for i, (p, t) in enumerate(zip(points, targets)):
            try:
                out[i] = best_tapping(ring, p, t, DEFAULT_TECHNOLOGY).wirelength
            except TappingError:
                pass
        return out

    reference = solve_scalar()
    batched = batch_tapping_wirelengths(ring, points, targets, DEFAULT_TECHNOLOGY)
    np.testing.assert_allclose(batched, reference, atol=1e-9)
    assert np.array_equal(result.feasible, np.isfinite(reference))

    t_vec = min(_timed(solve_batch) for _ in range(3))
    t_scalar = min(_timed(solve_scalar) for _ in range(3))
    assert t_vec < t_scalar, (
        f"vectorized kernel slower than scalar: {t_vec * 1e3:.1f} ms vs "
        f"{t_scalar * 1e3:.1f} ms"
    )
    record_artifact(
        "Tapping kernel",
        format_table(
            [
                {
                    "flip_flops": float(n),
                    "scalar_ms": t_scalar * 1e3,
                    "vectorized_ms": t_vec * 1e3,
                    "speedup": t_scalar / t_vec,
                }
            ],
            "Vectorized tapping kernel vs scalar reference (one ring)",
        ),
    )


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
