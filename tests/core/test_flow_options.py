"""Tests for assorted FlowOptions behaviours."""

import pytest

from repro import FlowOptions, IntegratedFlow
from repro.netlist import generate_circuit, small_profile


@pytest.fixture(scope="module")
def circuit():
    return generate_circuit(small_profile(num_cells=150, num_flipflops=20, seed=71))


class TestFlowOptions:
    def test_detailed_refinement_improves_signal(self, circuit):
        plain = IntegratedFlow(
            circuit, options=FlowOptions(ring_grid_side=2, max_iterations=1)
        ).run()
        refined = IntegratedFlow(
            circuit,
            options=FlowOptions(
                ring_grid_side=2, max_iterations=1, detailed_refinement=True
            ),
        ).run()
        assert refined.base.signal_wirelength <= plain.base.signal_wirelength

    def test_default_ring_side_derived(self, circuit):
        res = IntegratedFlow(
            circuit, options=FlowOptions(max_iterations=1)
        ).run()
        # 20 flip-flops -> heuristic picks a small grid (>= 2 per side).
        assert res.array.num_rings >= 4

    def test_custom_period(self, circuit):
        res = IntegratedFlow(
            circuit, options=FlowOptions(ring_grid_side=2, period=2000.0, max_iterations=1)
        ).run()
        assert res.array.period == 2000.0
        # All normalized targets land inside the period.
        for t in res.schedule.normalized(2000.0).targets.values():
            assert 0.0 <= t < 2000.0

    def test_slower_clock_never_less_slack(self, circuit):
        """Slack is non-decreasing in the period.  (It is often *equal*:
        the hold constraint M <= D_min - t_hold does not involve T, so
        hold-limited designs cap out regardless of frequency.)"""
        fast = IntegratedFlow(
            circuit, options=FlowOptions(ring_grid_side=2, period=500.0, max_iterations=1)
        ).run()
        slow = IntegratedFlow(
            circuit, options=FlowOptions(ring_grid_side=2, period=2000.0, max_iterations=1)
        ).run()
        assert slow.slack_available >= fast.slack_available - 1e-9

    def test_local_trees_post_pass(self, circuit):
        res = IntegratedFlow(
            circuit,
            options=FlowOptions(ring_grid_side=2, max_iterations=2, local_trees=True),
        ).run()
        assert res.local_trees is not None
        lt = res.local_trees
        # Never worse than direct stubs; partitions the flip-flops.
        assert lt.total_wirelength <= lt.baseline_wirelength + 1e-6
        in_trees = {ff for t in lt.trees for ff in t.members}
        assert in_trees | set(lt.direct_stubs) == set(res.assignment.ring_of)

    def test_local_trees_off_by_default(self, circuit):
        res = IntegratedFlow(
            circuit, options=FlowOptions(ring_grid_side=2, max_iterations=1)
        ).run()
        assert res.local_trees is None

    def test_tapping_weight_changes_overall_cost(self, circuit):
        res = IntegratedFlow(
            circuit,
            options=FlowOptions(ring_grid_side=2, max_iterations=1, tapping_weight=10.0),
        ).run()
        rec = res.final
        assert rec.overall_cost == pytest.approx(
            10.0 * rec.tapping_wirelength + rec.signal_wirelength
        )
