"""Load-dependent linear gate-delay model.

Each cell kind gets a delay ``d = intrinsic * k_i + (R_drive * k_r) * C_load``
where the per-kind factors roughly track SIS-era standard-cell libraries
(inverters fast, XOR slow, flip-flop clock-to-Q in between).  The absolute
values come from :class:`repro.constants.Technology`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import OHM_FF_TO_PS, Technology
from ..netlist import CellKind

#: (intrinsic multiplier, drive-resistance multiplier) per cell kind.
_KIND_FACTORS: dict[CellKind, tuple[float, float]] = {
    CellKind.NOT: (0.6, 0.8),
    CellKind.BUF: (0.8, 0.7),
    CellKind.NAND: (1.0, 1.0),
    CellKind.NOR: (1.1, 1.1),
    CellKind.AND: (1.3, 1.0),
    CellKind.OR: (1.4, 1.1),
    CellKind.XOR: (1.8, 1.3),
    CellKind.XNOR: (1.8, 1.3),
    CellKind.DFF: (1.5, 1.0),  # clock-to-Q
}


@dataclass(frozen=True, slots=True)
class GateDelayModel:
    """Evaluates cell delays and pin capacitances for one technology."""

    tech: Technology

    def input_cap(self, kind: CellKind) -> float:
        """Input-pin capacitance (fF) of a cell of ``kind``."""
        if kind is CellKind.DFF:
            return self.tech.gate_input_cap  # D pin (clock pin is separate)
        if kind.is_pad:
            return 0.0
        return self.tech.gate_input_cap

    def drive_resistance(self, kind: CellKind) -> float:
        """Output drive resistance (ohm)."""
        if kind.is_pad:
            return 0.0  # primary inputs are ideal sources
        _, kr = _KIND_FACTORS[kind]
        return self.tech.gate_drive_resistance * kr

    def delay(self, kind: CellKind, load_cap: float) -> float:
        """Cell delay (ps) driving ``load_cap`` fF.

        For a DFF this is the clock-to-Q delay; pads have zero delay.
        """
        if kind.is_pad:
            return 0.0
        ki, kr = _KIND_FACTORS[kind]
        return (
            self.tech.gate_intrinsic_delay * ki
            + self.tech.gate_drive_resistance * kr * load_cap * OHM_FF_TO_PS
        )
