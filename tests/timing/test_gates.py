"""Tests for the gate delay model."""

import pytest

from repro.constants import DEFAULT_TECHNOLOGY
from repro.netlist import CellKind
from repro.timing import GateDelayModel

MODEL = GateDelayModel(DEFAULT_TECHNOLOGY)


class TestGateDelayModel:
    def test_pads_are_ideal(self):
        assert MODEL.delay(CellKind.INPUT, 100.0) == 0.0
        assert MODEL.delay(CellKind.OUTPUT, 100.0) == 0.0
        assert MODEL.input_cap(CellKind.INPUT) == 0.0
        assert MODEL.drive_resistance(CellKind.INPUT) == 0.0

    def test_delay_linear_in_load(self):
        d0 = MODEL.delay(CellKind.NAND, 0.0)
        d10 = MODEL.delay(CellKind.NAND, 10.0)
        d20 = MODEL.delay(CellKind.NAND, 20.0)
        assert d20 - d10 == pytest.approx(d10 - d0)

    def test_inverter_faster_than_xor(self):
        assert MODEL.delay(CellKind.NOT, 10.0) < MODEL.delay(CellKind.XOR, 10.0)

    def test_dff_has_clock_to_q(self):
        assert MODEL.delay(CellKind.DFF, 10.0) > 0.0

    def test_all_gate_kinds_covered(self):
        for kind in CellKind:
            if kind.is_pad:
                continue
            assert MODEL.delay(kind, 5.0) > 0.0
            assert MODEL.input_cap(kind) > 0.0
            assert MODEL.drive_resistance(kind) > 0.0
