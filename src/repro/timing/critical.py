"""Critical sequential-pair extraction for timing-driven placement.

The Fig. 3 loop couples timing back into placement only through
pseudo-nets to rings; the placer never hears *which* sequential pairs
are struggling.  Following the critical-path-extraction idea of Shi et
al. ("Timing-Driven Global Placement by Efficient Critical Path
Extraction"), this module ranks every sequentially adjacent pair by its
*permissible-range slack* — how far the scheduled skew sits from the
nearer of its setup/hold walls — extracts the ``k`` most critical
pairs, traces the signal nets that can lie on a launch→capture
combinational path, and turns them into per-net weights for
:class:`~repro.placement.QuadraticPlacer`.

Slack of one pair under a skew schedule ``t`` (permissible range
``[lo, hi]`` from :func:`repro.timing.constraints.permissible_range`):

    slack(i→j) = min(hi - (t_i - t_j), (t_i - t_j) - lo)

Negative slack means the scheduled skew violates a wall; the smallest
values are the pairs the placer should pull together.  The extraction
is purely structural on top of the vectorized STA's pair bounds — it
adds no timing re-analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..constants import Technology
from ..netlist import Circuit
from ..obs import NULL_COLLECTOR, Collector
from .constraints import permissible_range
from .sta import PathBounds

__all__ = [
    "CriticalPair",
    "CriticalPathExtractor",
    "critical_net_weights",
    "pair_slacks",
    "worst_pair_slack",
]


@dataclass(frozen=True, slots=True)
class CriticalPair:
    """One critical sequential pair and the nets on its paths.

    ``nets`` are the signal nets that can lie on *some* combinational
    path from ``launch``'s Q to ``capture``'s D — the union over paths,
    not just the single worst path, because the quadratic placer acts on
    nets, and shortening any launch→capture branch tightens the pair's
    D_max.
    """

    launch: str
    capture: str
    #: Permissible-range slack of the scheduled skew (ps); negative
    #: means the pair violates a setup or hold wall.
    slack: float
    nets: tuple[str, ...]


def pair_slacks(
    pairs: Mapping[tuple[str, str], PathBounds],
    schedule: Mapping[str, float],
    period: float,
    tech: Technology,
) -> dict[tuple[str, str], float]:
    """Permissible-range slack of every pair under ``schedule``.

    Pairs whose flip-flops are missing from the schedule default to a
    zero skew target (the same convention the skew engines use for
    unconstrained flip-flops).
    """
    slacks: dict[tuple[str, str], float] = {}
    for (i, j), bounds in pairs.items():
        r = permissible_range(i, j, bounds, period, tech)
        skew = schedule.get(i, 0.0) - schedule.get(j, 0.0)
        slacks[(i, j)] = min(r.hi - skew, skew - r.lo)
    return slacks


def worst_pair_slack(
    pairs: Mapping[tuple[str, str], PathBounds],
    schedule: Mapping[str, float],
    period: float,
    tech: Technology,
) -> float:
    """The smallest permissible-range slack over all pairs (0.0 if none)."""
    slacks = pair_slacks(pairs, schedule, period, tech)
    return min(slacks.values(), default=0.0)


class CriticalPathExtractor:
    """Ranks sequential pairs by slack and maps them onto signal nets.

    Built once per circuit (the combinational adjacency is structural
    and position-independent, like :class:`TimingStructure`); call
    :meth:`extract` each Fig. 3 iteration with the current pair bounds
    and skew schedule.
    """

    def __init__(
        self,
        circuit: Circuit,
        *,
        collector: Collector = NULL_COLLECTOR,
    ) -> None:
        self.circuit = circuit
        self.collector = collector
        # Combinational DAG adjacency with flip-flops split at the
        # register boundary ("<ff>$D" pseudo-nodes), exactly as the STA
        # engines see the graph.  An edge u -> v rides the net driven by
        # u, so tracing edges traces nets.
        succ: dict[str, list[str]] = {}
        pred: dict[str, list[str]] = {}
        for u, v in circuit.combinational_edges():
            succ.setdefault(u, []).append(v)
            pred.setdefault(v, []).append(u)
        self._succ = succ
        self._pred = pred

    # ------------------------------------------------------------------
    def _reachable(
        self, start: str, adjacency: Mapping[str, list[str]]
    ) -> set[str]:
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in adjacency.get(u, ()):
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen

    def path_nets(self, launch: str, capture: str) -> tuple[str, ...]:
        """Signal nets on any combinational path ``launch`` → ``capture``.

        A cell is on such a path iff it is reachable from the launch
        flip-flop's output *and* reaches the capture flip-flop's D
        pseudo-node; the net it drives then carries a path edge.  Nets
        are returned in deterministic (sorted) order.
        """
        forward = self._reachable(launch, self._succ)
        backward = self._reachable(
            Circuit.dff_data_node(capture), self._pred
        )
        nets = {u for u in forward & backward if u in self.circuit.nets}
        return tuple(sorted(nets))

    def extract(
        self,
        pairs: Mapping[tuple[str, str], PathBounds],
        schedule: Mapping[str, float],
        period: float,
        tech: Technology,
        *,
        k: int,
    ) -> list[CriticalPair]:
        """The ``k`` most critical pairs (smallest slack first).

        Ties break on the pair key so extraction is deterministic under
        any hash seed.  Self-loop pairs (a flip-flop feeding itself)
        participate: their nets still deserve weight.
        """
        if k <= 0:
            return []
        slacks = pair_slacks(pairs, schedule, period, tech)
        ranked = sorted(slacks.items(), key=lambda kv: (kv[1], kv[0]))
        out: list[CriticalPair] = []
        for (launch, capture), slack in ranked[:k]:
            out.append(
                CriticalPair(
                    launch=launch,
                    capture=capture,
                    slack=slack,
                    nets=self.path_nets(launch, capture),
                )
            )
        self.collector.count("timing.critical.extractions")
        self.collector.count("timing.critical.pairs", len(out))
        if out:
            self.collector.gauge("timing.critical.worst-slack-ps", out[0].slack)
        return out


def critical_net_weights(
    critical: list[CriticalPair], weight: float
) -> dict[str, float]:
    """Per-net placer weights: ``weight`` for every net on a critical
    pair's paths, everything else implicit 1.0.

    A net shared by several critical pairs gets ``weight`` once (not
    compounded) — the quadratic objective already sums one spring set
    per net, and compounding would let dense critical regions blow up
    the Laplacian's conditioning.
    """
    weights: dict[str, float] = {}
    for pair in critical:
        for net in pair.nets:
            weights[net] = weight
    return weights
