"""Semantic checks on the cost-driven skew LP objectives."""

import pytest

from repro.constants import DEFAULT_TECHNOLOGY
from repro.core import cost_driven_schedule
from repro.core.skew_cost_driven import RingAttraction
from repro.geometry import Point
from repro.rotary import stub_delay
from repro.timing import PathBounds

TECH = DEFAULT_TECHNOLOGY
T = 1000.0


def make_attraction(ff: str, t_c: float, distance: float) -> RingAttraction:
    return RingAttraction(
        ff=ff,
        nearest_point=Point(0.0, 0.0),
        distance=distance,
        delay_at_point=t_c,
        stub_delay=stub_delay(distance, TECH),
    )


class TestMinMaxSemantics:
    def test_unconstrained_delta_is_half_window(self):
        """With no timing constraints, the optimal t sits so that both
        inequalities bind equally: Delta* = t_{c,i} (the midpoint of
        [t_c, t_c + 2 t_ci])."""
        att = make_attraction("a", t_c=300.0, distance=80.0)
        sched = cost_driven_schedule({"a": att}, {}, ["a"], T, TECH, mode="minmax")
        t = sched.targets["a"]
        delta_star = max(att.delay_at_point + 2 * att.stub_delay - t, t - att.delay_at_point)
        assert delta_star == pytest.approx(att.stub_delay, abs=1e-6)

    def test_two_flipflops_worst_governs(self):
        near = make_attraction("near", t_c=100.0, distance=5.0)
        far = make_attraction("far", t_c=700.0, distance=150.0)
        sched = cost_driven_schedule(
            {"near": near, "far": far}, {}, ["near", "far"], T, TECH, mode="minmax"
        )
        # Delta is set by the far flip-flop's larger stub delay.
        t_far = sched.targets["far"]
        delta_far = max(
            far.delay_at_point + 2 * far.stub_delay - t_far,
            t_far - far.delay_at_point,
        )
        assert delta_far == pytest.approx(far.stub_delay, abs=1e-5)


class TestWeightedSemantics:
    def test_exact_targets_when_unconstrained(self):
        atts = {
            "a": make_attraction("a", 200.0, 40.0),
            "b": make_attraction("b", 650.0, 15.0),
        }
        sched = cost_driven_schedule(atts, {}, ["a", "b"], T, TECH, mode="weighted")
        for ff, att in atts.items():
            assert sched.targets[ff] == pytest.approx(att.achievable_delay, abs=1e-6)

    def test_constraint_forces_compromise_toward_heavy_weight(self):
        """A rigid skew constraint couples the two targets; the solution
        must favour the far (heavily weighted) flip-flop."""
        near = make_attraction("near", t_c=100.0, distance=2.0)
        far = make_attraction("far", t_c=400.0, distance=200.0)
        # Force t_near - t_far ~ 0 via a tight two-sided constraint.
        pairs = {
            ("near", "far"): PathBounds(
                d_min=TECH.hold_time, d_max=T - TECH.setup_time
            ),
            ("far", "near"): PathBounds(
                d_min=TECH.hold_time, d_max=T - TECH.setup_time
            ),
        }
        sched = cost_driven_schedule(
            {"near": near, "far": far}, pairs, ["near", "far"], T, TECH,
            mode="weighted",
        )
        err_far = abs(sched.targets["far"] - far.achievable_delay)
        err_near = abs(sched.targets["near"] - near.achievable_delay)
        # The weighted objective (w = distance) sacrifices the near FF.
        assert err_far <= err_near + 1e-6
