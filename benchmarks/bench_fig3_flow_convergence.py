"""Fig. 3: the methodology flow's convergence behaviour.

The timed kernel is one stage-6 incremental placement (the loop's most
expensive stage, per the paper's Table IV CPU split).
"""

import pytest

from repro.experiments import fig3_flow_convergence, format_table
from repro.placement import (
    IncrementalOptions,
    PseudoNet,
    incremental_place,
    region_for_circuit,
)

from conftest import record_artifact


@pytest.fixture(scope="module")
def fig3_artifact(suite, s9234_experiment):
    rows = fig3_flow_convergence(s9234_experiment.flow)
    record_artifact(
        "Fig. 3",
        format_table(
            rows,
            f"Fig. 3 - flow convergence on {s9234_experiment.name} "
            "(iteration 0 = base case)",
        ),
    )
    return rows


def test_bench_incremental_placement(benchmark, fig3_artifact, suite, s9234_experiment):
    assert fig3_artifact[-1]["tapping_wl_um"] <= fig3_artifact[0]["tapping_wl_um"]
    exp = s9234_experiment
    region = region_for_circuit(exp.circuit, suite.tech, suite.options.utilization)
    pseudo = [
        PseudoNet(ff, sol.point, suite.options.pseudo_net_weight)
        for ff, sol in exp.flow.assignment.solutions.items()
    ]
    movable = {c.name for c in exp.circuit.standard_cells}
    previous = {n: p for n, p in exp.flow.positions.items() if n in movable}

    def replace_once():
        return incremental_place(
            exp.circuit,
            region,
            previous,
            pseudo,
            IncrementalOptions(
                stability_weight=suite.options.stability_weight,
                pseudo_net_weight=suite.options.pseudo_net_weight,
            ),
        )

    result = benchmark.pedantic(replace_once, rounds=3, iterations=1)
    assert len(result.positions) == len(movable)
