"""Leakage power estimation — eq. (9) of the paper.

    P_leakage = Vdd * I_off * (S + N_F * S_F)

where ``I_off`` is the unit leakage current, ``S`` the total inverter/gate
size, ``N_F`` the flip-flop count and ``S_F`` the size of one flip-flop.
The paper notes its methodology does not resize gates, so leakage is
unchanged by the flow; we expose it anyway for completeness.
"""

from __future__ import annotations

from ..constants import Technology
from ..netlist import Circuit


def leakage_power_mw(circuit: Circuit, tech: Technology) -> float:
    """Eq. (9) in mW (Vdd in V, I_off in mA)."""
    n_ff = len(circuit.flip_flops)
    n_gates = len(circuit.gates)
    total_gate_size = n_gates * tech.gate_size
    return tech.vdd * tech.unit_leakage_current * (
        total_gate_size + n_ff * tech.flipflop_size
    )
