"""Extension: multi-corner (variation-robust) skew scheduling.

A nominal-corner schedule can fail at the slow/fast corners; merging the
per-pair bounds pessimistically yields a schedule valid at every corner
for a quantified slack cost.  The timed kernel is the three-corner STA +
merge.
"""

import pytest

from repro.core import max_slack_schedule
from repro.experiments import format_table
from repro.timing import analyze_corners, default_corners, validate_schedule

from conftest import record_artifact


@pytest.fixture(scope="module")
def corner_rows(suite, s9234_experiment):
    exp = s9234_experiment
    mc = analyze_corners(
        exp.circuit, exp.flow.positions, default_corners(suite.tech)
    )
    ffs = [ff.name for ff in exp.circuit.flip_flops]
    period = suite.options.period
    nominal = max_slack_schedule(
        mc.corner_pairs("nominal"), ffs, period, suite.tech
    )
    merged = max_slack_schedule(mc.merged, ffs, period, suite.tech)

    def violations(schedule, corner):
        return len(
            validate_schedule(
                schedule.targets, mc.corner_pairs(corner), period, suite.tech
            )
        )

    rows = [
        {
            "schedule": "nominal-corner only",
            "slack_ps": nominal.slack,
            "slow_violations": violations(nominal, "slow"),
            "fast_violations": violations(nominal, "fast"),
        },
        {
            "schedule": "multi-corner merged",
            "slack_ps": merged.slack,
            "slow_violations": violations(merged, "slow"),
            "fast_violations": violations(merged, "fast"),
        },
    ]
    record_artifact(
        "Extension: multi-corner scheduling",
        format_table(
            rows,
            f"Extension - variation-robust skew scheduling on {exp.name} "
            "(corners at +/-15%)",
        ),
    )
    return rows, exp, mc


def test_bench_corner_analysis(benchmark, suite, corner_rows):
    rows, exp, _ = corner_rows
    nominal_row, merged_row = rows
    assert merged_row["slow_violations"] == 0
    assert merged_row["fast_violations"] == 0
    assert merged_row["slack_ps"] <= nominal_row["slack_ps"] + 1e-6

    def analyze():
        return analyze_corners(
            exp.circuit, exp.flow.positions, default_corners(suite.tech)
        )

    result = benchmark.pedantic(analyze, rounds=3, iterations=1)
    assert set(result.corners) == {"slow", "nominal", "fast"}
