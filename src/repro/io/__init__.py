"""Design persistence: JSON save/load of flow results."""

from .design_io import FORMAT_VERSION, SavedDesign, load_design, save_design

__all__ = ["FORMAT_VERSION", "SavedDesign", "save_design", "load_design"]
