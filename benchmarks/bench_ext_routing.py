"""Extension: global routing of the placed design.

Routes every signal net of the first configured circuit and reports
routed wirelength vs the HPWL estimate at two edge capacities; the timed
kernel is a full-design route at generous capacity.
"""

import pytest

from repro.core import signal_wirelength
from repro.experiments import format_table
from repro.placement import region_for_circuit
from repro.routing import RoutingGrid, route_design

from conftest import record_artifact


@pytest.fixture(scope="module")
def routing_setup(suite, s9234_experiment):
    exp = s9234_experiment
    region = region_for_circuit(exp.circuit, suite.tech, suite.options.utilization)
    hpwl = signal_wirelength(exp.circuit, exp.flow.positions)
    return exp, region, hpwl


@pytest.fixture(scope="module")
def routing_rows(suite, routing_setup):
    exp, region, hpwl = routing_setup
    rows = []
    for capacity in (8, 64):
        grid = RoutingGrid(region.bbox, gcell_size=15.0, capacity=capacity)
        result = route_design(exp.circuit, exp.flow.positions, grid)
        rows.append(
            {
                "capacity": capacity,
                "routed_wl_um": result.total_wirelength,
                "hpwl_um": hpwl,
                "ratio": result.total_wirelength / hpwl,
                "overflow": result.overflow,
                "peak_congestion": result.max_congestion,
            }
        )
    record_artifact(
        "Extension: global routing",
        format_table(rows, f"Extension - global routing on {exp.name}"),
    )
    return rows


def test_bench_route_design(benchmark, suite, routing_setup, routing_rows):
    tight, loose = routing_rows
    assert loose["overflow"] <= tight["overflow"]
    assert loose["routed_wl_um"] >= loose["hpwl_um"] * 0.95
    exp, region, _ = routing_setup

    def run():
        grid = RoutingGrid(region.bbox, gcell_size=15.0, capacity=64)
        return route_design(exp.circuit, exp.flow.positions, grid)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.num_nets > 0
