"""Tapping-cost matrices and the paper's evaluation metrics.

The *tapping cost* ``c_ij`` of flip-flop ``i`` on ring ``j`` is the stub
wirelength of the best Section-III tapping solution satisfying the
flip-flop's clock-delay target.  This module builds the (pruned) cost
matrix consumed by both assignment formulations, and computes the
headline metrics of Tables III-VII:

* **AFD** — average flip-flop distance = total tapping WL / #flip-flops;
* **tapping WL / signal WL / total WL**;
* **max load capacitance** per ring (Section VI objective);
* **WCP** — wirelength-capacitance product (Table VII).

Two builder paths exist: the NumPy-batched kernel of
:mod:`repro.rotary.tapping_vec` (default, one call per ring) and the
scalar reference loop over :func:`repro.rotary.best_tapping`
(``method="scalar"``, cross-checked against the kernel by the property
tests).  :class:`TappingCostCache` adds cross-iteration row reuse for the
integrated flow: a flip-flop's matrix row only depends on its position
and skew target, so rows whose ``(position, target)`` key is unchanged
are served from the cache instead of being re-solved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Mapping, Sequence

import numpy as np
import numpy.typing as npt

from ..constants import Technology
from ..errors import CostMatrixError, TappingError
from ..geometry import Point, net_hpwl, net_steiner_wl
from ..netlist import Circuit
from ..obs import NULL_COLLECTOR, Collector
from ..opt.mincostflow import FORBIDDEN_COST
from ..parallel import fixed_chunks, run_chunk_tasks
from ..rotary import (
    BatchTappingResult,
    RingArray,
    RingPairsTappingResult,
    TappingSolution,
    batch_solve_rings,
    best_tapping,
    stub_load_capacitance,
)

#: Either batched-result flavour; both expose ``.solution(i)``.
_TappingBatch = BatchTappingResult | RingPairsTappingResult


@dataclass(frozen=True, slots=True)
class TappingCostMatrix:
    """Pruned flip-flop x ring tapping-cost matrix."""

    ff_names: tuple[str, ...]
    #: ``costs[i, j]`` = stub wirelength (um), ``FORBIDDEN_COST`` if pruned.
    costs: npt.NDArray[np.float64]
    #: Per-row candidate (non-pruned) ring columns; derived from ``costs``
    #: when not supplied.  Consumers iterate this instead of re-scanning
    #: the dense matrix against ``FORBIDDEN_COST``.
    candidates: tuple[npt.NDArray[np.intp], ...] = field(default=())

    def __post_init__(self) -> None:
        if len(self.candidates) != len(self.ff_names):
            object.__setattr__(
                self,
                "candidates",
                tuple(
                    np.flatnonzero(self.costs[i] < FORBIDDEN_COST)
                    for i in range(len(self.ff_names))
                ),
            )

    @property
    def num_flipflops(self) -> int:
        return len(self.ff_names)

    @property
    def num_rings(self) -> int:
        return int(self.costs.shape[1])

    @property
    def finite_mask(self) -> npt.NDArray[np.bool_]:
        """Boolean mask of non-pruned (candidate) arcs."""
        return self.costs < FORBIDDEN_COST

    def capacitance_matrix(self, tech: Technology) -> npt.NDArray[np.float64]:
        """Load-capacitance matrix ``C_p[i, j]`` (fF) for Section VI.

        Includes the stub wire capacitance and the flip-flop input
        capacitance; pruned entries stay forbidden.
        """
        caps = np.where(
            self.costs < FORBIDDEN_COST,
            self.costs * tech.unit_capacitance + tech.flipflop_input_cap,
            FORBIDDEN_COST,
        )
        return caps


def _validated_names(
    positions: Mapping[str, Point], targets: Mapping[str, float]
) -> tuple[str, ...]:
    """Sorted target names, rejecting targets for unknown flip-flops.

    A target keyed by a name absent from ``positions`` used to raise a
    bare ``KeyError`` mid-build (or, worse, silently misalign rows when
    callers pre-filtered); fail fast with a library error instead.
    """
    unknown = sorted(name for name in targets if name not in positions)
    if unknown:
        preview = ", ".join(unknown[:8])
        if len(unknown) > 8:
            preview += ", ..."
        raise CostMatrixError(
            f"{len(unknown)} skew target(s) reference unknown flip-flops "
            f"(no position available): {preview}"
        )
    return tuple(sorted(targets))


#: Flip-flop rows per chunk when pruning candidates on the worker pool.
#: Fixed (worker-count-independent); each chunk sorts and writes its own
#: disjoint block of mask rows, so the mask is identical for any jobs.
_MASK_ROWS_PER_CHUNK = 512


def _candidate_mask(
    array: RingArray,
    px: npt.NDArray[np.float64],
    py: npt.NDArray[np.float64],
    candidate_rings: int | None,
    jobs: int = 1,
    collector: Collector = NULL_COLLECTOR,
) -> npt.NDArray[np.bool_]:
    """Boolean (ff, ring) mask of the pruned candidate arcs.

    Mirrors :meth:`RingArray.rings_by_distance`: the ``k`` nearest rings
    by center Manhattan distance, ties broken by ring id (stable sort).
    ``jobs > 1`` splits the flip-flop rows into fixed blocks dispatched
    to the worker pool — the per-row distance/argsort work is
    independent, so the pruning (the candidate set fed to the §V/§VI
    assignment engines) is bit-identical for any worker count.
    """
    n_rings = array.num_rings
    if candidate_rings is None or candidate_rings >= n_rings:
        return np.ones((px.shape[0], n_rings), dtype=bool)
    cx = np.array([ring.center.x for ring in array])
    cy = np.array([ring.center.y for ring in array])
    mask = np.zeros((px.shape[0], n_rings), dtype=bool)
    k = candidate_rings

    def prune_rows(lo: int, hi: int) -> None:
        dist = np.abs(px[lo:hi, None] - cx[None, :]) + np.abs(py[lo:hi, None] - cy[None, :])
        order = np.argsort(dist, axis=1, kind="stable")[:, :k]
        np.put_along_axis(mask[lo:hi], order, True, axis=1)

    run_chunk_tasks(
        prune_rows,
        fixed_chunks(px.shape[0], _MASK_ROWS_PER_CHUNK),
        jobs=jobs,
        collector=collector,
        stage="cost.candidate-mask",
    )
    return mask


def _check_pairs_feasible(
    result: RingPairsTappingResult,
    names: Sequence[str],
    rows: npt.NDArray[np.intp] | None = None,
) -> None:
    """Raise on the first infeasible pair, in pair order.

    Callers order pairs ring-major (all of ring 0's rows, then ring 1's,
    ...), so the reported (ring, flip-flop) matches what the historical
    per-ring loop raised on.  ``rows`` maps pair index to a row of
    ``names``; ``None`` means pairs and ``names`` are parallel.
    """
    if result.feasible.all():
        return
    p = int(np.flatnonzero(~result.feasible)[0])
    name = names[p] if rows is None else names[int(rows[p])]
    raise TappingError(
        f"no tapping point on ring {int(result.ring_ids[p])} is feasible "
        f"for flip-flop {name!r}"
    )


def tapping_cost_matrix(
    array: RingArray,
    positions: Mapping[str, Point],
    targets: Mapping[str, float],
    tech: Technology,
    candidate_rings: int | None = 8,
    method: Literal["vectorized", "scalar"] = "vectorized",
    jobs: int = 1,
) -> TappingCostMatrix:
    """Build the cost matrix for all flip-flops against the ring array.

    ``candidate_rings`` prunes each flip-flop to its nearest rings (the
    paper: "if a flip-flop and a ring are too far away from each other,
    it is not necessary to insert an arc between them"); ``None`` builds
    the full matrix.  ``method="scalar"`` runs the reference per-solution
    loop instead of the batched kernel; both produce identical matrices.
    ``jobs > 1`` dispatches the pruning and the pair kernel to the
    :mod:`repro.parallel` worker pool; the matrix is bit-identical for
    any worker count.
    """
    ff_names = _validated_names(positions, targets)
    n_rings = array.num_rings
    costs = np.full((len(ff_names), n_rings), FORBIDDEN_COST)

    if method == "scalar":
        for i, name in enumerate(ff_names):
            p = positions[name]
            rings = (
                array.rings
                if candidate_rings is None
                else array.rings_by_distance(p, candidate_rings)
            )
            for ring in rings:
                sol = best_tapping(ring, p, targets[name], tech)
                costs[i, ring.ring_id] = sol.wirelength
        return TappingCostMatrix(ff_names=ff_names, costs=costs)
    if method != "vectorized":
        raise CostMatrixError(f"unknown cost-matrix method {method!r}")

    px = np.array([positions[name].x for name in ff_names])
    py = np.array([positions[name].y for name in ff_names])
    tg = np.array([targets[name] for name in ff_names])
    mask = _candidate_mask(array, px, py, candidate_rings, jobs=jobs)
    # One pair-batched kernel call over every candidate arc, ring-major
    # so infeasibility reporting matches the historical per-ring loop.
    rid, fid = np.nonzero(mask.T)
    if rid.size:
        result = batch_solve_rings(
            array, rid, px[fid], py[fid], tg[fid], tech, jobs=jobs
        )
        _check_pairs_feasible(result, ff_names, rows=fid)
        costs[fid, rid] = result.wirelength
    return TappingCostMatrix(ff_names=ff_names, costs=costs)


class TappingCostCache:
    """Cross-iteration cache of cost-matrix rows and tapping solutions.

    A flip-flop's matrix row (and every per-ring tapping solution behind
    it) is a pure function of its ``(position, skew target)`` pair given
    a fixed ring array and technology.  The integrated flow re-keys each
    flip-flop every iteration; rows whose key is unchanged are reused
    ("hit"), rows whose flip-flop moved or was re-targeted are re-solved
    with the batched kernel ("miss").  The same store serves
    :func:`realize_assignment` and the flow's retargeting step, so a
    matrix build followed by an assignment realization solves each
    flip-flop exactly once.

    Counters (``hits`` / ``misses``) are cumulative over the cache's
    lifetime; the flow snapshots them per iteration into
    :class:`repro.core.flow.IterationRecord`, and every hit/miss is also
    emitted to the ``collector`` as the ``tapping.cache.hits`` /
    ``tapping.cache.misses`` counters.
    """

    def __init__(
        self,
        array: RingArray,
        tech: Technology,
        candidate_rings: int | None = 8,
        collector: Collector = NULL_COLLECTOR,
        jobs: int = 1,
    ) -> None:
        self.array = array
        self.tech = tech
        self.candidate_rings = candidate_rings
        self.collector = collector
        #: Worker count for pruning/kernel dispatch (execution-only: the
        #: cached rows are bit-identical for any value).
        self.jobs = jobs
        #: Row key per flip-flop: (x, y, target).
        self._key: dict[str, tuple[float, float, float]] = {}
        #: Cached dense cost row per flip-flop.
        self._row: dict[str, npt.NDArray[np.float64]] = {}
        #: Cached solutions per flip-flop: ring id -> (batch result, index).
        #: Materialized into :class:`TappingSolution` lazily — only the
        #: assigned ring of each flip-flop is ever realized.
        self._solutions: dict[str, dict[int, tuple[_TappingBatch, int]]] = {}
        self.hits = 0
        self.misses = 0

    # -- internal -----------------------------------------------------
    @staticmethod
    def _row_key(p: Point, target: float) -> tuple[float, float, float]:
        return (p.x, p.y, target)

    def _solve_rows(
        self,
        names: Sequence[str],
        positions: Mapping[str, Point],
        targets: Mapping[str, float],
    ) -> None:
        """(Re)compute the cached row + solutions of ``names``."""
        px = np.array([positions[name].x for name in names])
        py = np.array([positions[name].y for name in names])
        tg = np.array([targets[name] for name in names])
        n_rings = self.array.num_rings
        sols: list[dict[int, tuple[_TappingBatch, int]]] = [{} for _ in names]
        mask = _candidate_mask(
            self.array, px, py, self.candidate_rings,
            jobs=self.jobs, collector=self.collector,
        )
        rid, fid = np.nonzero(mask.T)
        rows_arr = np.full((len(names), n_rings), FORBIDDEN_COST)
        if rid.size:
            result = batch_solve_rings(
                self.array, rid, px[fid], py[fid], tg[fid], self.tech,
                collector=self.collector, jobs=self.jobs,
            )
            _check_pairs_feasible(result, names, rows=fid)
            rows_arr[fid, rid] = result.wirelength
            for p in range(rid.size):
                sols[fid[p]][int(rid[p])] = (result, p)
        for i, name in enumerate(names):
            self._key[name] = self._row_key(positions[name], targets[name])
            self._row[name] = rows_arr[i]
            self._solutions[name] = sols[i]

    def _evict_stale(self, live: Sequence[str]) -> None:
        stale = set(self._key) - set(live)
        for name in sorted(stale):
            del self._key[name], self._row[name], self._solutions[name]

    # -- public -------------------------------------------------------
    def matrix(
        self,
        positions: Mapping[str, Point],
        targets: Mapping[str, float],
    ) -> TappingCostMatrix:
        """Build the cost matrix, reusing rows with unchanged keys."""
        with self.collector.span("tapping.cost-matrix"):
            ff_names = _validated_names(positions, targets)
            changed = [
                name
                for name in ff_names
                if self._key.get(name)
                != self._row_key(positions[name], targets[name])
            ]
            self._tally(len(ff_names) - len(changed), len(changed))
            if changed:
                self._solve_rows(changed, positions, targets)
            self._evict_stale(ff_names)
            costs = np.stack([self._row[name] for name in ff_names])
            return TappingCostMatrix(ff_names=ff_names, costs=costs)

    def _tally(self, hits: int, misses: int) -> None:
        """Bump the lifetime counters and mirror them to the collector."""
        self.hits += hits
        self.misses += misses
        if hits:
            self.collector.count("tapping.cache.hits", hits)
        if misses:
            self.collector.count("tapping.cache.misses", misses)

    def solution(
        self,
        name: str,
        ring_id: int,
        position: Point,
        target: float,
    ) -> TappingSolution:
        """Tapping solution of one flip-flop on one ring, cached."""
        if self._key.get(name) == self._row_key(position, target):
            entry = self._solutions[name].get(ring_id)
            if entry is not None:
                self._tally(1, 0)
                result, i = entry
                return result.solution(i)
        self._tally(0, 1)
        return best_tapping(self.array[ring_id], position, target, self.tech)

    def realize(
        self,
        ring_of: Mapping[str, int],
        positions: Mapping[str, Point],
        targets: Mapping[str, float],
    ) -> dict[str, TappingSolution]:
        """Tapping solutions for an assignment, cached and batched.

        Flip-flops whose ``(position, target)`` key matches the cache are
        served from it; the rest are re-solved grouped by ring through
        the batched kernel (and do *not* update the cached rows — only a
        :meth:`matrix` build defines the row store).
        """
        with self.collector.span("tapping.realize"):
            out: dict[str, TappingSolution] = {}
            missed: dict[int, list[str]] = {}
            hits = 0
            for name, ring_id in ring_of.items():
                if self._key.get(name) == self._row_key(
                    positions[name], targets[name]
                ):
                    entry = self._solutions[name].get(ring_id)
                    if entry is not None:
                        hits += 1
                        result, i = entry
                        out[name] = result.solution(i)
                        continue
                missed.setdefault(int(ring_id), []).append(name)
            self._tally(hits, len(ring_of) - hits)
            if missed:
                pair_names: list[str] = []
                pair_rings: list[int] = []
                for ring_id, names in missed.items():
                    pair_names.extend(names)
                    pair_rings.extend([ring_id] * len(names))
                px = np.array([positions[name].x for name in pair_names])
                py = np.array([positions[name].y for name in pair_names])
                tg = np.array([targets[name] for name in pair_names])
                result = batch_solve_rings(
                    self.array, np.array(pair_rings, dtype=np.intp),
                    px, py, tg, self.tech, collector=self.collector,
                    jobs=self.jobs,
                )
                _check_pairs_feasible(result, pair_names)
                for i, name in enumerate(pair_names):
                    out[name] = result.solution(i)
            return out


@dataclass(frozen=True, slots=True)
class Assignment:
    """A flip-flop -> ring assignment plus its tapping solutions."""

    ff_names: tuple[str, ...]
    ring_of: dict[str, int]
    solutions: dict[str, TappingSolution]

    @property
    def tapping_wirelength(self) -> float:
        return sum(s.wirelength for s in self.solutions.values())

    @property
    def average_flipflop_distance(self) -> float:
        """AFD: tapping wirelength averaged over flip-flops."""
        n = len(self.ff_names)
        return self.tapping_wirelength / n if n else 0.0

    def ring_loads(self, array: RingArray, tech: Technology) -> npt.NDArray[np.float64]:
        """Per-ring load capacitance (fF): stub wires + flip-flop pins."""
        loads = np.zeros(array.num_rings)
        for name, sol in self.solutions.items():
            loads[self.ring_of[name]] += stub_load_capacitance(
                sol.wirelength, tech
            )
        return loads

    def max_load_capacitance(self, array: RingArray, tech: Technology) -> float:
        """The Section VI objective: max over rings of load capacitance."""
        loads = self.ring_loads(array, tech)
        return float(loads.max()) if loads.size else 0.0

    def ring_occupancy(self, array: RingArray) -> npt.NDArray[np.int_]:
        """Flip-flop count per ring."""
        occ = np.zeros(array.num_rings, dtype=int)
        for ring_id in self.ring_of.values():
            occ[ring_id] += 1
        return occ


def realize_assignment(
    assign: npt.NDArray[np.intp],
    matrix: TappingCostMatrix,
    array: RingArray,
    positions: Mapping[str, Point],
    targets: Mapping[str, float],
    tech: Technology,
    cache: TappingCostCache | None = None,
) -> Assignment:
    """Re-solve the tapping of each flip-flop on its assigned ring.

    ``assign[i]`` is the ring index of ``matrix.ff_names[i]``.  With a
    ``cache``, solutions already computed during the matrix build are
    reused; otherwise flip-flops are re-solved grouped by ring through
    the batched kernel.
    """
    ring_of = {
        name: int(assign[i]) for i, name in enumerate(matrix.ff_names)
    }
    if cache is not None:
        solutions = cache.realize(ring_of, positions, targets)
    else:
        solutions = {}
        names = list(ring_of)
        px = np.array([positions[name].x for name in names])
        py = np.array([positions[name].y for name in names])
        tg = np.array([targets[name] for name in names])
        rid = np.array([ring_of[name] for name in names], dtype=np.intp)
        result = batch_solve_rings(array, rid, px, py, tg, tech)
        _check_pairs_feasible(result, names)
        for i, name in enumerate(names):
            solutions[name] = result.solution(i)
    return Assignment(
        ff_names=matrix.ff_names, ring_of=ring_of, solutions=solutions
    )


def signal_wirelength(
    circuit: Circuit,
    positions: Mapping[str, Point],
    model: str = "hpwl",
) -> float:
    """Total signal-net wirelength (um) over the placed design.

    ``model="hpwl"`` (default, the paper's metric) or ``model="steiner"``
    for the rectilinear-Steiner estimate (exact for nets of <= 3 pins,
    tighter for bigger nets).
    """
    if model not in ("hpwl", "steiner"):
        raise ValueError(f"unknown wirelength model {model!r}")
    estimate = net_hpwl if model == "hpwl" else net_steiner_wl
    total = 0.0
    for net in circuit.nets.values():
        pins = [positions[m] for m in net.members if m in positions]
        total += estimate(pins)
    return total


def wirelength_capacitance_product(total_wl: float, max_cap_ff: float) -> float:
    """WCP (um * pF), the Table VII comparison metric."""
    return total_wl * max_cap_ff * 1e-3  # fF -> pF
