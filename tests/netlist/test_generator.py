"""Tests for the synthetic ISCAS89-like circuit generator."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist import (
    PROFILES,
    CircuitProfile,
    GeneratorOptions,
    generate_circuit,
    generate_named,
    small_profile,
)


class TestProfiles:
    def test_paper_table2_values(self):
        p = PROFILES["s9234"]
        assert (p.num_cells, p.num_flipflops, p.num_nets) == (1510, 135, 1471)
        assert p.num_rings == 16
        assert p.ring_grid_side == 4

    def test_all_ring_counts_are_squares(self):
        for p in PROFILES.values():
            assert p.ring_grid_side**2 == p.num_rings

    def test_inconsistent_profile_rejected(self):
        with pytest.raises(ValueError):
            CircuitProfile("bad", 10, 20, 10, 4, 0.0)

    def test_non_square_rings_rejected(self):
        with pytest.raises(ValueError):
            CircuitProfile("bad", 100, 10, 100, 5, 0.0)


class TestGenerator:
    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_exact_cell_and_net_counts(self, name):
        circuit = generate_named(name)
        stats = circuit.stats()
        profile = PROFILES[name]
        assert stats.num_cells == profile.num_cells
        assert stats.num_flipflops == profile.num_flipflops
        assert stats.num_nets == profile.num_nets

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            generate_named("s000")

    def test_deterministic(self):
        p = small_profile(seed=3)
        a = generate_circuit(p)
        b = generate_circuit(p)
        assert [c.name for c in a] == [c.name for c in b]
        assert [c.fanin for c in a] == [c.fanin for c in b]

    def test_combinational_graph_is_dag(self):
        circuit = generate_circuit(small_profile(num_cells=300, num_flipflops=40))
        g = nx.DiGraph(circuit.combinational_edges())
        assert nx.is_directed_acyclic_graph(g)

    def test_depth_bound_respected(self):
        depth = 5
        circuit = generate_circuit(
            small_profile(num_cells=400, num_flipflops=50),
            GeneratorOptions(depth=depth),
        )
        g = nx.DiGraph(circuit.combinational_edges())
        longest = nx.dag_longest_path_length(g)
        # Levels gates + the final register-input edge.
        assert longest <= depth + 1

    def test_every_primary_input_consumed(self):
        circuit = generate_circuit(small_profile(num_cells=200, num_flipflops=30))
        for pi in circuit.primary_inputs:
            assert circuit.fanout_of(pi), f"primary input {pi} is dangling"

    def test_every_flipflop_has_data_source(self):
        circuit = generate_circuit(small_profile())
        for ff in circuit.flip_flops:
            assert len(ff.fanin) == 1

    @settings(max_examples=10, deadline=None)
    @given(
        cells=st.integers(60, 400),
        ffs=st.integers(8, 40),
        seed=st.integers(0, 2**16),
    )
    def test_generated_circuits_validate(self, cells, ffs, seed):
        """Any profile in range yields a structurally valid circuit."""
        profile = small_profile(num_cells=cells, num_flipflops=min(ffs, cells - 20), seed=seed)
        circuit = generate_circuit(profile)
        stats = circuit.stats()
        assert stats.num_cells == profile.num_cells
        assert stats.num_flipflops == profile.num_flipflops
        g = nx.DiGraph(circuit.combinational_edges())
        assert nx.is_directed_acyclic_graph(g)
