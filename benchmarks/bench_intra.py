"""Intra-run parallelism: cost-matrix speedup + bit-identity gates.

Standalone (argparse, not pytest — mirrors ``bench_scale``): times the
``scale10k``-sized tapping cost-matrix stage at ``jobs=1`` versus
``jobs="auto"`` and gates the speedup, then runs the full flow on
``scale10k`` at both settings and gates exact ``decision_digest()``
equality — the two halves of the ``repro.parallel`` contract (faster,
never different).

Speedup gates scale with the machine: >= 2x with at least 2 cores,
>= 3x with at least 4 (per the PR acceptance criteria); on a single
core the timing gate is vacuous and only the identity gates apply.

Writes ``BENCH_intra.json``::

    {
      "cpu_count": ...,
      "cost_matrix": {"flipflops": ..., "rings": ..., "serial_s": ...,
                      "parallel_s": ..., "jobs": ..., "speedup": ...},
      "flow_identity": {"circuit": "scale10k", "digest_serial": ...,
                        "digest_auto": ...},
      "failures": [...]
    }

Exit codes: 0 = all gates pass, 1 = speedup/identity violation,
2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.api import FlowRequest, run_flow
from repro.constants import DEFAULT_TECHNOLOGY
from repro.core import FlowOptions, tapping_cost_matrix
from repro.geometry import BBox, Point
from repro.netlist import ALL_PROFILES
from repro.rotary import RingArray

#: The scale10k profile's Fig. 3 workload shape (1250 FFs, 100 rings).
PROFILE = "scale10k"


def required_speedup(cores: int) -> float | None:
    """The gate for this machine, or None when timing is vacuous."""
    if cores >= 4:
        return 3.0
    if cores >= 2:
        return 2.0
    return None


def cost_matrix_workload() -> tuple[RingArray, dict, dict]:
    """A deterministic scale10k-shaped tapping cost-matrix input."""
    profile = ALL_PROFILES[PROFILE]
    side = int(round(profile.num_rings**0.5))
    extent = 4000.0
    array = RingArray(BBox(0, 0, extent, extent), side=side, period=1000.0)
    rng = np.random.default_rng(20260808)
    n = profile.num_flipflops
    xy = rng.uniform(0.0, extent, size=(n, 2))
    period_targets = rng.uniform(0.0, 1000.0, size=n)
    names = [f"ff{i:05d}" for i in range(n)]
    positions = {
        name: Point(float(x), float(y)) for name, (x, y) in zip(names, xy)
    }
    targets = {
        name: float(t) for name, t in zip(names, period_targets)
    }
    return array, positions, targets


def time_cost_matrix(jobs: int, repeats: int) -> tuple[float, bytes]:
    """Best-of-``repeats`` build time plus the matrix bytes."""
    array, positions, targets = cost_matrix_workload()
    best = float("inf")
    payload = b""
    for _ in range(repeats):
        t0 = time.perf_counter()
        matrix = tapping_cost_matrix(
            array,
            positions,
            targets,
            DEFAULT_TECHNOLOGY,
            candidate_rings=8,
            jobs=jobs,
        )
        best = min(best, time.perf_counter() - t0)
        payload = matrix.costs.tobytes()
    return best, payload


def flow_digest(jobs: int | str, max_iterations: int) -> str:
    result = run_flow(
        FlowRequest(
            circuit=PROFILE,
            options=FlowOptions(max_iterations=max_iterations, jobs=jobs),
        )
    )
    return result.decision_digest()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repetitions per jobs setting (best-of, default: 3)",
    )
    parser.add_argument(
        "--flow-iterations",
        type=int,
        default=2,
        help="flow iterations for the digest-identity gate (default: 2)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="override the core-count-derived speedup gate",
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_intra.json", help="result JSON path"
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    cores = max(1, os.cpu_count() or 1)
    auto_jobs = cores
    gate = (
        args.min_speedup
        if args.min_speedup is not None
        else required_speedup(cores)
    )
    failures: list[str] = []
    profile = ALL_PROFILES[PROFILE]

    print(
        f"[bench_intra] cost matrix ({profile.num_flipflops} FFs x "
        f"{profile.num_rings} rings), jobs=1 vs jobs={auto_jobs} ...",
        flush=True,
    )
    serial_s, serial_bytes = time_cost_matrix(1, args.repeats)
    parallel_s, parallel_bytes = time_cost_matrix(auto_jobs, args.repeats)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(
        f"[bench_intra] serial {serial_s:.3f}s, parallel {parallel_s:.3f}s "
        f"({speedup:.2f}x on {cores} cores)",
        flush=True,
    )
    if serial_bytes != parallel_bytes:
        failures.append("cost matrix bytes differ between jobs=1 and auto")
    if gate is not None and speedup < gate:
        failures.append(
            f"cost-matrix speedup {speedup:.2f}x < required {gate}x "
            f"on {cores} cores"
        )

    print(
        f"[bench_intra] flow digest identity on {PROFILE} "
        f"({args.flow_iterations} iterations) ...",
        flush=True,
    )
    digest_serial = flow_digest(1, args.flow_iterations)
    digest_auto = flow_digest("auto", args.flow_iterations)
    if digest_serial != digest_auto:
        failures.append(
            f"decision digests diverge: jobs=1 {digest_serial[:16]} vs "
            f"auto {digest_auto[:16]}"
        )
    print(
        f"[bench_intra] digests {'match' if digest_serial == digest_auto else 'DIVERGE'} "
        f"({digest_serial[:16]})",
        flush=True,
    )

    doc = {
        "cpu_count": cores,
        "cost_matrix": {
            "circuit": PROFILE,
            "flipflops": profile.num_flipflops,
            "rings": profile.num_rings,
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "jobs": auto_jobs,
            "speedup": speedup,
            "required_speedup": gate,
        },
        "flow_identity": {
            "circuit": PROFILE,
            "iterations": args.flow_iterations,
            "digest_serial": digest_serial,
            "digest_auto": digest_auto,
        },
        "failures": failures,
    }
    Path(args.output).write_text(json.dumps(doc, indent=2) + "\n")
    print(f"[bench_intra] wrote {args.output}", flush=True)
    for message in failures:
        print(f"[bench_intra] FAIL: {message}", file=sys.stderr, flush=True)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
