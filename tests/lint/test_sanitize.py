"""Runtime sanitizer: tripwires, restore semantics, env/flow plumbing."""

import random
import time

import numpy as np
import pytest

from repro.core import FlowOptions, IntegratedFlow
from repro.errors import SanitizerError
from repro.lint import SANITIZE_ENV, Sanitizer, sanitize_action_from_env
from repro.netlist import generate_circuit, small_profile
from repro.obs import TraceCollector


class TestTripwires:
    def test_raise_mode_aborts_on_global_random(self):
        with Sanitizer(action="raise"):
            with pytest.raises(SanitizerError, match="random.random"):
                random.random()

    def test_raise_mode_aborts_on_wall_clock(self):
        with Sanitizer(action="raise"):
            with pytest.raises(SanitizerError, match="time.time"):
                time.time()

    def test_raise_mode_aborts_on_numpy_global(self):
        with Sanitizer(action="raise"):
            with pytest.raises(SanitizerError, match="numpy.random"):
                np.random.rand(2)

    def test_record_mode_counts_and_calls_through(self):
        with Sanitizer(action="record") as s:
            value = random.randint(1, 6)
            stamp = time.time()
        assert 1 <= value <= 6 and stamp > 0
        assert s.trip_count == 2
        assert s.trips == ["random.randint", "time.time"]

    def test_collector_counters(self):
        collector = TraceCollector()
        with Sanitizer(action="record", collector=collector):
            random.random()
            random.random()
        trace = collector.trace()
        assert trace.counters["sanitize.trips"] == 2
        assert trace.counters["sanitize.trip.random.random"] == 2

    def test_originals_restored_on_exit(self):
        before = (time.time, random.random, np.random.rand)
        with Sanitizer(action="record"):
            assert time.time is not before[0]
        assert (time.time, random.random, np.random.rand) == before

    def test_restored_even_when_body_raises(self):
        before = time.time
        with pytest.raises(SanitizerError):
            with Sanitizer(action="raise"):
                time.time()
        assert time.time is before

    def test_not_reentrant(self):
        s = Sanitizer(action="record")
        with s:
            with pytest.raises(SanitizerError, match="re-entrant"):
                s.__enter__()

    def test_monotonic_clocks_stay_unpatched(self):
        with Sanitizer(action="raise"):
            assert time.monotonic() > 0
            assert time.perf_counter() > 0

    def test_seeded_generators_stay_unpatched(self):
        with Sanitizer(action="raise"):
            assert 0.0 <= random.Random(1).random() < 1.0
            assert np.random.default_rng(1).random() < 1.0

    def test_bad_action_rejected(self):
        with pytest.raises(ValueError):
            Sanitizer(action="explode")


class TestEnv:
    @pytest.mark.parametrize("value", ["1", "true", "on", "raise", " RAISE "])
    def test_raise_values(self, monkeypatch, value):
        monkeypatch.setenv(SANITIZE_ENV, value)
        assert sanitize_action_from_env() == "raise"

    def test_record_value(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "record")
        assert sanitize_action_from_env() == "record"

    @pytest.mark.parametrize("value", ["", "0", "off", "nonsense"])
    def test_disarmed_values(self, monkeypatch, value):
        monkeypatch.setenv(SANITIZE_ENV, value)
        assert sanitize_action_from_env() is None

    def test_unset_is_disarmed(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        assert sanitize_action_from_env() is None


class TestFlowIntegration:
    @pytest.fixture(scope="class")
    def circuit(self):
        return generate_circuit(
            small_profile(num_cells=120, num_flipflops=16, seed=5)
        )

    def test_sanitized_flow_runs_clean(self, circuit):
        """The whole integrated flow completes with tripwires armed —
        the dynamic counterpart of the ``repro lint src/`` self-check."""
        opts = FlowOptions(max_iterations=2, sanitize=True)
        result = IntegratedFlow(circuit, options=opts).run()
        assert result.final.overall_cost > 0

    def test_env_record_counts_zero_trips(self, circuit, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV, "record")
        collector = TraceCollector()
        opts = FlowOptions(max_iterations=1)
        IntegratedFlow(circuit, options=opts, collector=collector).run()
        assert "sanitize.trips" not in collector.trace().counters

    def test_sanitize_option_round_trips(self):
        opts = FlowOptions(sanitize=True)
        assert FlowOptions.from_dict(opts.to_dict()) == opts

    def test_decision_digest_ignores_timing(self, circuit):
        opts = FlowOptions(max_iterations=1)
        a = IntegratedFlow(circuit, options=opts).run()
        b = IntegratedFlow(circuit, options=opts).run()
        # Wall-clock metrics differ between the runs...
        assert (a.seconds_algorithm, a.seconds_placer) != (
            b.seconds_algorithm,
            b.seconds_placer,
        ) or a.base.seconds != b.base.seconds
        # ...but the decision digest is identical.
        assert a.decision_digest() == b.decision_digest()
        assert len(a.decision_digest()) == 64

    def test_decision_digest_changes_with_decisions(self, circuit):
        a = IntegratedFlow(circuit, options=FlowOptions(max_iterations=1)).run()
        c = IntegratedFlow(
            circuit, options=FlowOptions(max_iterations=1, period=1200.0)
        ).run()
        assert a.decision_digest() != c.decision_digest()
