"""Rotary ring arrays (Fig. 1(b) of the paper).

Multiple rings are tiled over the die and cross-connected so that they
phase-lock; all rings then share a set of equal-phase points (the small
triangles in Fig. 1(b)).  We model this steady state directly: every ring
gets the same reference delay at its reference corner.  The array is
"generated as in [13]" — a regular grid sized to the placement region.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..geometry import BBox, Point
from .ring import RotaryRing


@dataclass(frozen=True, slots=True)
class RingArrayOptions:
    """Geometry knobs for ring array generation."""

    #: Ring half-width as a fraction of half the ring pitch (<1 keeps
    #: neighbouring rings from overlapping and leaves routing space).
    fill_factor: float = 0.7
    #: Reference delay at every ring's reference corner (ps).
    reference_delay: float = 0.0


class RingArray:
    """A ``side x side`` grid of phase-locked rotary rings over a region."""

    def __init__(
        self,
        region: BBox,
        side: int,
        period: float,
        options: RingArrayOptions | None = None,
    ):
        if side <= 0:
            raise ValueError("ring array side must be positive")
        opts = options or RingArrayOptions()
        if not 0.0 < opts.fill_factor <= 1.0:
            raise ValueError("fill_factor must be in (0, 1]")
        self.region = region
        self.side = side
        self.period = period
        self.options = opts
        pitch_x = region.width / side
        pitch_y = region.height / side
        half = 0.5 * min(pitch_x, pitch_y) * opts.fill_factor
        self._segment_stacks: tuple[np.ndarray, ...] | None = None
        self._rings: list[RotaryRing] = []
        for gy in range(side):
            for gx in range(side):
                center = Point(
                    region.xlo + (gx + 0.5) * pitch_x,
                    region.ylo + (gy + 0.5) * pitch_y,
                )
                self._rings.append(
                    RotaryRing(
                        ring_id=len(self._rings),
                        center=center,
                        half_width=half,
                        period=period,
                        reference_delay=opts.reference_delay,
                    )
                )

    def __len__(self) -> int:
        return len(self._rings)

    def __iter__(self):
        return iter(self._rings)

    def __getitem__(self, ring_id: int) -> RotaryRing:
        return self._rings[ring_id]

    @property
    def rings(self) -> list[RotaryRing]:
        return list(self._rings)

    @property
    def num_rings(self) -> int:
        return len(self._rings)

    def nearest_ring(self, p: Point) -> RotaryRing:
        """The ring whose center is closest to ``p``."""
        return min(self._rings, key=lambda r: r.center.manhattan(p))

    def rings_by_distance(self, p: Point, k: int | None = None) -> list[RotaryRing]:
        """Rings sorted by center distance to ``p`` (optionally top ``k``).

        Used to prune flip-flop/ring arcs in the assignment network: the
        paper inserts an arc only "if the corresponding flip-flop is
        considered to be a potential candidate of the ring".
        """
        ordered = sorted(self._rings, key=lambda r: r.center.manhattan(p))
        return ordered if k is None else ordered[:k]

    def segment_stacks(self) -> tuple[np.ndarray, ...]:
        """Stacked per-ring segment arrays for the pair-batched kernel.

        Returns ``(sx, sy, dx, dy, length, t0, rho)`` each of shape
        ``(num_rings, num_segments)`` plus the per-ring ``period`` of
        shape ``(num_rings,)``; row ``j`` holds ring ``j``'s segments in
        :meth:`RotaryRing.segments` order.  Computed once and cached —
        ring geometry is immutable after construction.
        """
        if self._segment_stacks is None:
            per_ring = [
                [
                    (s.start.x, s.start.y, s.dx, s.dy, s.length, s.t0, s.rho)
                    for s in ring.segments()
                ]
                for ring in self._rings
            ]
            stacked = np.array(per_ring)  # (R, S, 7)
            periods = np.array([ring.period for ring in self._rings])
            self._segment_stacks = tuple(
                np.ascontiguousarray(stacked[:, :, k]) for k in range(7)
            ) + (periods,)
        return self._segment_stacks

    def default_capacities(self, num_flipflops: int, headroom: float = 1.5) -> list[int]:
        """Per-ring flip-flop capacities ``U_j``.

        Uniform capacity with ``headroom`` slack over a perfectly even
        spread, so the network flow has room to trade capacity for cost.
        """
        if num_flipflops <= 0:
            raise ValueError("num_flipflops must be positive")
        if headroom < 1.0:
            raise ValueError("headroom must be >= 1.0")
        per = math.ceil(num_flipflops / self.num_rings * headroom)
        return [per] * self.num_rings
