"""Tests for the LinearProgram facade (HiGHS and simplex backends)."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InfeasibleError, OptimizationError, UnboundedError
from repro.opt import LinearProgram


def toy_lp() -> LinearProgram:
    lp = LinearProgram("toy")
    lp.add_var("x", lb=0.0)
    lp.add_var("y", lb=0.0)
    lp.add_constraint({"x": 1, "y": 2}, "<=", 14)
    lp.add_constraint({"x": 3, "y": -1}, ">=", 0)
    lp.add_constraint({"x": 1, "y": -1}, "<=", 2)
    lp.set_objective({"x": -1, "y": -1})
    return lp


class TestModelBuilding:
    def test_duplicate_variable(self):
        lp = LinearProgram()
        lp.add_var("x")
        with pytest.raises(OptimizationError):
            lp.add_var("x")

    def test_bad_bounds(self):
        lp = LinearProgram()
        with pytest.raises(OptimizationError):
            lp.add_var("x", lb=2.0, ub=1.0)

    def test_unknown_variable_in_constraint(self):
        lp = LinearProgram()
        lp.add_var("x")
        with pytest.raises(OptimizationError):
            lp.add_constraint({"ghost": 1.0}, "<=", 0.0)

    def test_bad_sense(self):
        lp = LinearProgram()
        lp.add_var("x")
        with pytest.raises(OptimizationError):
            lp.add_constraint({"x": 1.0}, "<", 0.0)  # type: ignore[arg-type]

    def test_unknown_variable_in_objective(self):
        lp = LinearProgram()
        lp.add_var("x")
        with pytest.raises(OptimizationError):
            lp.set_objective({"ghost": 1.0})

    def test_counts(self):
        lp = toy_lp()
        assert lp.num_vars == 2
        assert lp.num_constraints == 3


class TestSolve:
    def test_known_optimum(self):
        sol = toy_lp().solve()
        assert sol.objective == pytest.approx(-10.0)
        assert sol["x"] == pytest.approx(6.0)
        assert sol["y"] == pytest.approx(4.0)

    def test_infeasible(self):
        lp = LinearProgram()
        lp.add_var("x", lb=0.0)
        lp.add_constraint({"x": 1}, "<=", -1)
        lp.set_objective({"x": 1})
        with pytest.raises(InfeasibleError):
            lp.solve()

    def test_unbounded(self):
        lp = LinearProgram()
        lp.add_var("x", lb=0.0)
        lp.set_objective({"x": -1})
        with pytest.raises(UnboundedError):
            lp.solve()

    def test_equality_constraints(self):
        lp = LinearProgram()
        lp.add_var("x", lb=0.0)
        lp.add_var("y", lb=0.0)
        lp.add_constraint({"x": 1, "y": 1}, "==", 10)
        lp.set_objective({"x": 2, "y": 1})
        sol = lp.solve()
        assert sol.objective == pytest.approx(10.0)
        assert sol["y"] == pytest.approx(10.0)

    def test_unknown_backend(self):
        with pytest.raises(OptimizationError):
            toy_lp().solve(backend="cplex")  # type: ignore[arg-type]


class TestMilp:
    def test_integer_knapsack(self):
        lp = LinearProgram("knap")
        for i, _ in enumerate([5, 4, 3]):
            lp.add_var(f"x{i}", lb=0, ub=1, integer=True)
        lp.add_constraint({"x0": 5, "x1": 4, "x2": 3}, "<=", 8)
        lp.set_objective({"x0": -10, "x1": -8, "x2": -6})
        sol = lp.solve()
        assert sol.objective == pytest.approx(-16.0)
        assert sol["x0"] == pytest.approx(1.0)
        assert sol["x2"] == pytest.approx(1.0)

    def test_relax_integrality(self):
        lp = LinearProgram()
        lp.add_var("x", lb=0, ub=1, integer=True)
        lp.add_constraint({"x": 2}, "<=", 1)
        lp.set_objective({"x": -1})
        relaxed = lp.solve(relax_integrality=True)
        assert relaxed["x"] == pytest.approx(0.5)
        exact = lp.solve()
        assert exact["x"] == pytest.approx(0.0)

    def test_simplex_rejects_integers(self):
        lp = LinearProgram()
        lp.add_var("x", lb=0, ub=1, integer=True)
        lp.set_objective({"x": 1})
        with pytest.raises(OptimizationError):
            lp.solve(backend="simplex")


class TestBackendAgreement:
    def test_toy_agreement(self):
        a = toy_lp().solve(backend="highs")
        b = toy_lp().solve(backend="simplex")
        assert a.objective == pytest.approx(b.objective, abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_random_lp_agreement(self, data):
        """Both backends find the same optimum on random bounded LPs."""
        n = data.draw(st.integers(1, 4))
        m = data.draw(st.integers(1, 5))
        coef = st.integers(-5, 5)
        lp1 = LinearProgram()
        lp2 = LinearProgram()
        for i in range(n):
            ub = data.draw(st.integers(1, 10))
            lp1.add_var(f"v{i}", lb=0.0, ub=float(ub))
            lp2.add_var(f"v{i}", lb=0.0, ub=float(ub))
        obj = {f"v{i}": float(data.draw(coef)) for i in range(n)}
        rows = []
        for _ in range(m):
            row = {f"v{i}": float(data.draw(coef)) for i in range(n)}
            rhs = float(data.draw(st.integers(0, 20)))
            rows.append((row, rhs))
        for lp in (lp1, lp2):
            for row, rhs in rows:
                lp.add_constraint(row, "<=", rhs)
            lp.set_objective(obj)
        # Bounded + x=0 feasible, so both must return an optimum.
        a = lp1.solve(backend="highs")
        b = lp2.solve(backend="simplex")
        assert a.objective == pytest.approx(b.objective, abs=1e-6)
