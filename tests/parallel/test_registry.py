"""Chunk-kernel registry semantics."""

import numpy as np
import pytest

from repro.parallel import chunk_kernel, registered_kernels, resolve_kernel


@chunk_kernel("tests.registry.double")
def _double(views, lo, hi):
    views["out"][lo:hi] = views["x"][lo:hi] * 2.0


class TestRegistry:
    def test_resolve_returns_registered_function(self):
        assert resolve_kernel("tests.registry.double") is _double

    def test_registered_kernels_sorted_and_contains(self):
        names = registered_kernels()
        assert names == tuple(sorted(names))
        assert "tests.registry.double" in names
        # The production tapping kernel registers on import.
        import repro.rotary.tapping_vec  # noqa: F401

        assert "tapping.solve-pairs" in registered_kernels()

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError, match="no-such-kernel"):
            resolve_kernel("no-such-kernel")

    def test_duplicate_name_rejected(self):
        def other(views, lo, hi):
            pass

        other.__qualname__ = "other"  # look module-level to the guard
        with pytest.raises(ValueError, match="already registered"):
            chunk_kernel("tests.registry.double")(other)

    def test_reregistering_same_function_is_ok(self):
        assert chunk_kernel("tests.registry.double")(_double) is _double

    def test_non_module_level_function_rejected(self):
        with pytest.raises(ValueError, match="module-level"):

            @chunk_kernel("tests.registry.nested")
            def nested(views, lo, hi):
                pass

    def test_kernel_runs(self):
        x = np.arange(6, dtype=np.float64)
        out = np.zeros_like(x)
        _double({"x": x, "out": out}, 2, 5)
        assert np.array_equal(out, [0, 0, 4, 6, 8, 0])
