"""Table IV: the iterated flow (stages 4-6) and its improvements.

The timed kernel is the Section V min-cost-flow assignment solve on the
first configured circuit's final cost matrix — the stage-3 optimizer that
runs once per flow iteration.
"""

import numpy as np
import pytest

from repro.core import assign_min_tapping_cost, tapping_cost_matrix
from repro.experiments import format_table, table4_network_flow

from conftest import record_artifact


@pytest.fixture(scope="module")
def table4_artifact(suite):
    rows = table4_network_flow(suite)
    record_artifact(
        "Table IV",
        format_table(rows, "Table IV - network-flow optimization (vs base case)"),
    )
    return rows


@pytest.fixture(scope="module")
def assignment_instance(suite, s9234_experiment):
    exp = s9234_experiment
    targets = exp.flow.schedule.normalized(suite.options.period).targets
    matrix = tapping_cost_matrix(
        exp.flow.array,
        exp.flow.positions,
        targets,
        suite.tech,
        suite.options.candidate_rings,
    )
    caps = exp.flow.array.default_capacities(
        matrix.num_flipflops, suite.options.capacity_headroom
    )
    return matrix, caps


def test_bench_min_cost_flow_assignment(benchmark, table4_artifact, assignment_instance):
    for row in table4_artifact:
        # The headline claim: substantial tapping reduction with only a
        # small signal-wirelength change.
        assert row["tap_improvement"] > 0.10
        assert abs(row["signal_penalty"]) < 0.10
    matrix, caps = assignment_instance
    assign = benchmark(assign_min_tapping_cost, matrix, caps)
    occupancy = np.bincount(assign, minlength=matrix.num_rings)
    assert (occupancy <= np.asarray(caps)).all()
