"""Static analysis of the Section VII skew difference-constraint system.

The setup/hold constraints ``t_left - t_right <= bound - M`` form a
constraint graph (edge ``right -> left`` with weight ``bound - M``); the
system is feasible at slack ``M`` iff that graph has no negative cycle.
:mod:`repro.opt.diffconstraints` answers the feasibility question for the
solver; this module answers the *diagnostic* question — it runs a full
Bellman-Ford with predecessor tracking so an infeasible system is reported
as the actual cycle of flip-flops whose constraints contradict each other,
not as a bare "infeasible" verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..constants import Technology
from ..opt.diffconstraints import SkewConstraint
from ..timing import PathBounds, skew_constraints


@dataclass(frozen=True, slots=True)
class NegativeCycle:
    """A certificate of infeasibility: a cycle of total negative weight.

    ``members`` are the flip-flops on the cycle in traversal order;
    ``weight`` is the cycle's total constraint headroom (< 0).  Summing
    the constraints around the cycle yields ``0 <= weight``, which is
    absurd — hence no schedule can satisfy them simultaneously.
    """

    members: tuple[str, ...]
    weight: float

    def describe(self, limit: int = 6) -> str:
        if len(self.members) > limit:
            chain = " -> ".join(self.members[:limit]) + " -> ..."
        else:
            chain = " -> ".join(self.members + (self.members[0],))
        return f"{chain} (total headroom {self.weight:.3f} ps)"


class SkewConstraintGraph:
    """The difference-constraint graph of a set of skew constraints."""

    def __init__(self, constraints: Sequence[SkewConstraint]) -> None:
        self.constraints = tuple(constraints)
        nodes: dict[str, int] = {}
        for con in self.constraints:
            nodes.setdefault(con.right, len(nodes))
            nodes.setdefault(con.left, len(nodes))
        self._index = nodes
        self._names = list(nodes)

    @classmethod
    def from_pairs(
        cls,
        pairs: Mapping[tuple[str, str], PathBounds],
        period: float,
        tech: Technology,
    ) -> "SkewConstraintGraph":
        """Build from STA pair bounds via eqs. (6)-(7)."""
        return cls(skew_constraints(pairs, period, tech))

    @property
    def num_nodes(self) -> int:
        return len(self._names)

    def negative_cycle(
        self, slack: float = 0.0, tol: float = 1e-9
    ) -> NegativeCycle | None:
        """The negative cycle at slack ``M``, or ``None`` when feasible.

        Full Bellman-Ford from a virtual source (distance 0 to every
        node).  If any edge still relaxes after ``n - 1`` passes, walking
        the predecessor chain ``n`` steps lands inside a negative cycle,
        which is then traced and returned.
        """
        n = len(self._names)
        if n == 0:
            return None
        edges: list[tuple[int, int, float]] = [
            (
                self._index[con.right],
                self._index[con.left],
                con.bound - con.slack_coeff * slack,
            )
            for con in self.constraints
        ]
        dist = [0.0] * n
        pred = [-1] * n
        relaxed_node = -1
        for sweep in range(n):
            relaxed_node = -1
            for u, v, w in edges:
                if dist[u] + w < dist[v] - tol:
                    dist[v] = dist[u] + w
                    pred[v] = u
                    relaxed_node = v
            if relaxed_node < 0:
                return None  # converged: no negative cycle
        # Walk back n steps to guarantee we are *on* the cycle.
        on_cycle = relaxed_node
        for _ in range(n):
            on_cycle = pred[on_cycle]
        cycle = [on_cycle]
        node = pred[on_cycle]
        while node != on_cycle:
            cycle.append(node)
            node = pred[node]
        cycle.reverse()
        members = tuple(self._names[i] for i in cycle)
        weight = self._cycle_weight(cycle, slack)
        return NegativeCycle(members=members, weight=weight)

    def _cycle_weight(self, cycle: list[int], slack: float) -> float:
        """Total weight around ``cycle`` using the cheapest edge per hop."""
        weight = 0.0
        k = len(cycle)
        for pos in range(k):
            u, v = cycle[pos], cycle[(pos + 1) % k]
            best: float | None = None
            for con in self.constraints:
                if self._index[con.right] == u and self._index[con.left] == v:
                    w = con.bound - con.slack_coeff * slack
                    if best is None or w < best:
                        best = w
            weight += best if best is not None else 0.0
        return weight

    def feasible(self, slack: float = 0.0) -> bool:
        """Whether the system admits a schedule at slack ``M``."""
        return self.negative_cycle(slack) is None
