"""Tests for bounded-skew clock-tree embedding."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocktree import (
    TopologyNode,
    embed_bounded_skew,
    embed_zero_skew,
    synthesize_bounded_skew_tree,
    synthesize_clock_tree,
)
from repro.constants import DEFAULT_TECHNOLOGY
from repro.errors import ClockTreeError
from repro.geometry import Point

TECH = DEFAULT_TECHNOLOGY


def leaf(name: str, p: Point) -> TopologyNode:
    return TopologyNode(name=name, location=p)


def snakey_topology():
    """Deep slow subtree merged with a central fast leaf: zero skew must
    snake, so a budget buys wire."""
    deep = TopologyNode(
        name="m", left=leaf("a", Point(0, 0)), right=leaf("b", Point(1200, 0))
    )
    topo = TopologyNode(name="root", left=deep, right=leaf("c", Point(600, 0)))
    caps = {"a": 12.0, "b": 12.0, "c": 12.0}
    return topo, caps


def recomputed_delays(tree):
    delays = {}

    def subtree_cap(node):
        if not node.children:
            return node.subtree_cap
        return sum(
            subtree_cap(ch) + TECH.wire_cap(ch.edge_length) for ch in node.children
        )

    def walk(node, acc):
        for ch in node.children:
            r = TECH.wire_res(ch.edge_length)
            c_down = subtree_cap(ch) + 0.5 * TECH.wire_cap(ch.edge_length)
            d = acc + r * c_down * 1e-3
            if ch.children:
                walk(ch, d)
            else:
                delays[ch.name] = d

    walk(tree.root, 0.0)
    return delays


class TestBoundedSkew:
    def test_zero_bound_matches_zero_skew(self):
        rng = random.Random(3)
        sinks = {
            f"s{i}": Point(rng.uniform(0, 500), rng.uniform(0, 500))
            for i in range(15)
        }
        zs = synthesize_clock_tree(sinks, TECH)
        bst = synthesize_bounded_skew_tree(sinks, TECH, skew_bound=0.0)
        assert bst.total_wirelength == pytest.approx(zs.total_wirelength, rel=1e-6)
        assert bst.skew_spread == pytest.approx(0.0, abs=1e-9)

    def test_budget_saves_wire_on_snakey_instance(self):
        topo, caps = snakey_topology()
        zs = embed_zero_skew(topo, caps, TECH)
        bst = embed_bounded_skew(topo, caps, TECH, skew_bound=2.0)
        assert bst.total_wirelength < zs.total_wirelength - 1.0

    def test_wirelength_monotone_in_bound(self):
        topo, caps = snakey_topology()
        wls = [
            embed_bounded_skew(topo, caps, TECH, skew_bound=b).total_wirelength
            for b in (0.0, 0.5, 2.0, 10.0)
        ]
        assert all(a >= b - 1e-6 for a, b in zip(wls, wls[1:]))

    def test_spread_respects_bound(self):
        topo, caps = snakey_topology()
        for bound in (0.0, 0.5, 2.0, 10.0):
            bst = embed_bounded_skew(topo, caps, TECH, skew_bound=bound)
            assert bst.skew_spread <= bound + 1e-6
            # Verify via independent delay recomputation.
            delays = recomputed_delays(bst.tree)
            spread = max(delays.values()) - min(delays.values())
            assert spread <= bound + 1e-6
            assert max(delays.values()) == pytest.approx(
                bst.delay_max, rel=1e-6, abs=1e-6
            )

    def test_negative_bound_rejected(self):
        topo, caps = snakey_topology()
        with pytest.raises(ClockTreeError):
            embed_bounded_skew(topo, caps, TECH, skew_bound=-1.0)

    def test_missing_cap_rejected(self):
        topo, caps = snakey_topology()
        del caps["c"]
        with pytest.raises(ClockTreeError):
            embed_bounded_skew(topo, caps, TECH, skew_bound=1.0)

    @settings(max_examples=12, deadline=None)
    @given(
        n=st.integers(2, 16),
        seed=st.integers(0, 2**16),
        bound=st.floats(0.0, 20.0),
    )
    def test_property_spread_and_dominance(self, n, seed, bound):
        rng = random.Random(seed)
        sinks = {
            f"s{i}": Point(rng.uniform(0, 600), rng.uniform(0, 600))
            for i in range(n)
        }
        zs = synthesize_clock_tree(sinks, TECH)
        bst = synthesize_bounded_skew_tree(sinks, TECH, skew_bound=bound)
        assert bst.total_wirelength <= zs.total_wirelength + 1e-6
        delays = recomputed_delays(bst.tree)
        if delays:
            assert max(delays.values()) - min(delays.values()) <= bound + 1e-6
