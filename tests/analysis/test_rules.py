"""Adversarial fixtures: each seeds exactly one violation and asserts the
checker reports exactly the seeded RCK code.

The one documented exception is RCK401/RCK402: an empty permissible range
*is* a negative two-cycle in the constraint graph, so those two codes are
physically inseparable on a full-registry run.
"""

import pytest

from repro.analysis import (
    CheckConfig,
    DesignContext,
    Severity,
    get_rule,
    registered_rules,
    run_checks,
)
from repro.analysis.rules import rule as register_rule
from repro.constants import DEFAULT_TECHNOLOGY
from repro.errors import CheckError
from repro.geometry import BBox, Point
from repro.netlist import parse_bench_text
from repro.rotary import RingArray, TappingSolution, required_total_capacitance
from repro.timing import PathBounds

TECH = DEFAULT_TECHNOLOGY

ALL_CODES = (
    "RCK101",
    "RCK102",
    "RCK103",
    "RCK201",
    "RCK202",
    "RCK203",
    "RCK301",
    "RCK302",
    "RCK303",
    "RCK401",
    "RCK402",
    "RCK403",
    "RCK501",
)


def _ctx(**kwargs):
    kwargs.setdefault("name", "fixture")
    return DesignContext(**kwargs)


def _array(side=2, extent=100.0, period=1000.0):
    return RingArray(BBox(0.0, 0.0, extent, extent), side=side, period=period)


def _solution(ring_id=0, wirelength=1.0, target=0.0):
    return TappingSolution(
        ring_id=ring_id,
        segment_index=0,
        x=0.0,
        point=Point(0.0, 0.0),
        wirelength=wirelength,
        periods_borrowed=0,
        snaked=False,
        target_delay=target,
    )


class TestRegistry:
    def test_all_codes_registered_in_order(self):
        assert tuple(r.code for r in registered_rules()) == ALL_CODES

    def test_cheap_subset(self):
        cheap = {r.code for r in registered_rules() if r.cheap}
        assert cheap == {"RCK301", "RCK302", "RCK303", "RCK401", "RCK403"}

    def test_get_rule_unknown_raises(self):
        with pytest.raises(CheckError, match="unknown rule code"):
            get_rule("RCK999")

    def test_duplicate_registration_raises(self):
        with pytest.raises(CheckError, match="duplicate rule code"):
            register_rule("RCK101", "dup", "duplicate registration")(
                lambda ctx: ()
            )

    def test_rules_have_descriptions_and_severities(self):
        for r in registered_rules():
            assert r.description
            assert isinstance(r.default_severity, Severity)


class TestNetlistRules:
    def test_rck101_dangling_fanin(self):
        circuit = parse_bench_text(
            "INPUT(a)\nOUTPUT(y)\ny = NAND(a, ghost)\n", validate=False
        )
        report = run_checks(_ctx(circuit=circuit))
        assert report.counts_by_code == {"RCK101": 1}
        (d,) = report.findings
        assert d.severity is Severity.ERROR
        assert "ghost" in d.message

    def test_rck101_reading_an_output_pad(self):
        circuit = parse_bench_text(
            "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\nOUTPUT(z)\nz = NOT(y__po)\n",
            validate=False,
        )
        report = run_checks(_ctx(circuit=circuit))
        assert report.counts_by_code == {"RCK101": 1}

    def test_rck102_undriven_primary_output(self):
        circuit = parse_bench_text(
            "INPUT(a)\nOUTPUT(ghost)\nOUTPUT(y)\ny = NOT(a)\n", validate=False
        )
        report = run_checks(_ctx(circuit=circuit))
        assert report.counts_by_code == {"RCK102": 1}
        (d,) = report.findings
        assert d.location.name == "ghost"

    def test_rck103_floating_driver(self):
        circuit = parse_bench_text(
            "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ndead = NOT(a)\n", validate=False
        )
        report = run_checks(_ctx(circuit=circuit))
        assert report.counts_by_code == {"RCK103": 1}
        (d,) = report.findings
        assert d.severity is Severity.WARNING
        assert d.location.name == "dead"

    def test_clean_netlist_yields_nothing(self):
        circuit = parse_bench_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
        report = run_checks(_ctx(circuit=circuit))
        assert report.findings == ()
        assert set(report.rules_run) == {"RCK101", "RCK102", "RCK103"}


class TestPlacementRules:
    def test_rck201_overlapping_cells(self):
        positions = {"g1": Point(10.0, 10.0), "g2": Point(10.0, 10.0)}
        report = run_checks(_ctx(positions=positions))
        assert report.counts_by_code == {"RCK201": 1}

    def test_rck201_pads_may_collide(self):
        circuit = parse_bench_text("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n")
        positions = {"a": Point(0.0, 0.0), "b": Point(0.0, 0.0), "y": Point(1.0, 1.0)}
        report = run_checks(_ctx(circuit=circuit, positions=positions))
        assert "RCK201" not in report.counts_by_code

    def test_rck202_cell_outside_region(self):
        positions = {"g1": Point(500.0, 500.0), "g2": Point(10.0, 10.0)}
        report = run_checks(
            _ctx(positions=positions, die=BBox(0.0, 0.0, 100.0, 100.0))
        )
        assert report.counts_by_code == {"RCK202": 1}
        (d,) = report.findings
        assert d.location.name == "g1"

    def test_rck203_unplaced_cell(self):
        circuit = parse_bench_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\nz = NOT(y)\nOUTPUT(z)\n")
        positions = {"y": Point(1.0, 1.0)}  # z missing
        report = run_checks(_ctx(circuit=circuit, positions=positions))
        assert report.counts_by_code == {"RCK203": 1}
        (d,) = report.findings
        assert d.location.name == "z"


class TestRingRules:
    def test_rck301_capacity_exceeded(self):
        ring_of = {f"ff{i}": 0 for i in range(3)}
        report = run_checks(
            _ctx(array=_array(), ring_of=ring_of, capacities=(1, 4, 4, 4))
        )
        assert report.counts_by_code == {"RCK301": 1}

    def test_rck301_out_of_range_ring_id(self):
        report = run_checks(
            _ctx(array=_array(), ring_of={"ff0": 7}, capacities=(4, 4, 4, 4))
        )
        assert report.counts_by_code == {"RCK301": 1}
        (d,) = report.findings
        assert "ring 7" in d.message

    def test_rck302_fosc_budget_exceeded(self):
        array = _array()
        # A stub long enough that its wire capacitance alone overshoots
        # the eq. (2) budget C = T^2 / (4 L).
        budget = required_total_capacitance(array[0], 1000.0, TECH)
        length = 2.0 * budget / TECH.unit_capacitance
        report = run_checks(
            _ctx(
                array=array,
                ring_of={"ff0": 0},
                capacities=(4, 4, 4, 4),
                tappings={"ff0": _solution(wirelength=length)},
            )
        )
        assert report.counts_by_code == {"RCK302": 1}

    def test_rck303_unassigned_flipflop(self):
        circuit = parse_bench_text("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")
        report = run_checks(
            _ctx(circuit=circuit, array=_array(), ring_of={}, capacities=(4, 4, 4, 4))
        )
        assert report.counts_by_code == {"RCK303": 1}
        (d,) = report.findings
        assert d.location == d.location.__class__("flip-flop", "q")


class TestScheduleRules:
    def test_rck401_infeasible_range_isolated(self):
        pairs = {("a", "b"): PathBounds(d_min=0.0, d_max=2000.0)}
        report = run_checks(
            _ctx(pairs=pairs), CheckConfig(enabled=("RCK401",))
        )
        assert report.counts_by_code == {"RCK401": 1}

    def test_rck401_implies_rck402_on_full_run(self):
        # An empty permissible range is itself a negative two-cycle, so
        # the constraint-graph rule necessarily corroborates RCK401.
        pairs = {("a", "b"): PathBounds(d_min=0.0, d_max=2000.0)}
        report = run_checks(_ctx(pairs=pairs))
        assert set(report.counts_by_code) == {"RCK401", "RCK402"}

    def test_rck402_negative_cycle_with_feasible_pairs(self):
        # Each pair's range is nonempty, but the two hold constraints
        # demand s_ab >= hold and s_ba >= hold simultaneously.
        pairs = {
            ("a", "b"): PathBounds(d_min=0.0, d_max=100.0),
            ("b", "a"): PathBounds(d_min=0.0, d_max=100.0),
        }
        report = run_checks(_ctx(pairs=pairs))
        assert report.counts_by_code == {"RCK402": 1}
        (d,) = report.findings
        assert "negative cycle" in d.message

    def test_rck403_skew_outside_range(self):
        pairs = {("a", "b"): PathBounds(d_min=100.0, d_max=600.0)}
        schedule = {"a": 500.0, "b": 0.0}
        report = run_checks(_ctx(pairs=pairs, schedule=schedule))
        assert report.counts_by_code == {"RCK403": 1}
        (d,) = report.findings
        assert "setup" in d.message

    def test_rck403_clean_schedule(self):
        pairs = {("a", "b"): PathBounds(d_min=100.0, d_max=600.0)}
        report = run_checks(_ctx(pairs=pairs, schedule={"a": 0.0, "b": 0.0}))
        assert report.findings == ()


class TestTappingRules:
    def test_rck501_stale_ring_assignment(self):
        report = run_checks(
            _ctx(
                array=_array(),
                ring_of={"ff0": 0},
                capacities=(4, 4, 4, 4),
                positions={"ff0": Point(25.0, 25.0)},
                schedule={"ff0": 0.0},
                tappings={"ff0": _solution(ring_id=1)},
            )
        )
        assert report.counts_by_code == {"RCK501": 1}
        (d,) = report.findings
        assert "ring 1" in d.message

    def test_rck501_drifted_target(self):
        report = run_checks(
            _ctx(
                array=_array(),
                ring_of={"ff0": 0},
                capacities=(4, 4, 4, 4),
                positions={"ff0": Point(25.0, 25.0)},
                schedule={"ff0": 0.0},
                tappings={"ff0": _solution(ring_id=0, target=123.456)},
            )
        )
        assert report.counts_by_code == {"RCK501": 1}
        (d,) = report.findings
        assert "123.456" in d.message

    def test_rck501_consistent_solution_is_clean(self):
        report = run_checks(
            _ctx(
                array=_array(),
                ring_of={"ff0": 0},
                capacities=(4, 4, 4, 4),
                positions={"ff0": Point(25.0, 25.0)},
                schedule={"ff0": 0.0},
                tappings={"ff0": _solution(ring_id=0, target=0.0)},
            )
        )
        assert report.findings == ()


class TestConfig:
    def test_disable_suppresses_rule(self):
        circuit = parse_bench_text(
            "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ndead = NOT(a)\n", validate=False
        )
        report = run_checks(
            _ctx(circuit=circuit), CheckConfig(disabled=("RCK103",))
        )
        assert report.findings == ()
        assert "RCK103" not in report.rules_run

    def test_severity_override_applied(self):
        circuit = parse_bench_text(
            "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ndead = NOT(a)\n", validate=False
        )
        report = run_checks(
            _ctx(circuit=circuit),
            CheckConfig(severity_overrides={"RCK103": Severity.ERROR}),
        )
        assert report.has_errors

    def test_unknown_code_in_config_raises(self):
        with pytest.raises(CheckError, match="unknown rule code"):
            CheckConfig(enabled=("RCK999",))

    def test_layers_absent_rules_skipped(self):
        report = run_checks(_ctx())  # empty context: nothing to check
        assert report.rules_run == ()
        assert len(report.rules_skipped) == len(ALL_CODES)
