"""Min-cost flow: unit tests plus cross-checks against networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InfeasibleError, OptimizationError
from repro.opt import FORBIDDEN_COST, FlowNetwork, solve_transportation


class TestFlowNetwork:
    def test_simple_assignment(self):
        net = FlowNetwork()
        net.add_arc("s", "f1", 1, 0.0)
        net.add_arc("s", "f2", 1, 0.0)
        a = net.add_arc("f1", "r1", 1, 3.0)
        b = net.add_arc("f1", "r2", 1, 1.0)
        c = net.add_arc("f2", "r1", 1, 2.0)
        d = net.add_arc("f2", "r2", 1, 4.0)
        net.add_arc("r1", "t", 1, 0.0)
        net.add_arc("r2", "t", 2, 0.0)
        res = net.solve({"s": 2, "t": -2})
        assert res.total_cost == pytest.approx(3.0)
        assert res.flow_on(b) == 1 and res.flow_on(c) == 1
        assert res.flow_on(a) == 0 and res.flow_on(d) == 0

    def test_negative_capacity_rejected(self):
        net = FlowNetwork()
        with pytest.raises(OptimizationError):
            net.add_arc("a", "b", -1, 0.0)

    def test_unbalanced_supply_rejected(self):
        net = FlowNetwork()
        net.add_arc("a", "b", 1, 0.0)
        with pytest.raises(OptimizationError):
            net.solve({"a": 2, "b": -1})

    def test_insufficient_capacity(self):
        net = FlowNetwork()
        net.add_arc("a", "b", 1, 0.0)
        with pytest.raises(InfeasibleError):
            net.solve({"a": 2, "b": -2})

    def test_negative_costs_handled(self):
        net = FlowNetwork()
        x = net.add_arc("s", "m", 2, -5.0)
        net.add_arc("m", "t", 2, 1.0)
        res = net.solve({"s": 2, "t": -2})
        assert res.total_cost == pytest.approx(-8.0)
        assert res.flow_on(x) == 2

    def test_multi_path_splitting(self):
        net = FlowNetwork()
        cheap = net.add_arc("s", "t", 1, 1.0)
        mid = net.add_arc("s", "t", 1, 2.0)
        dear = net.add_arc("s", "t", 1, 3.0)
        res = net.solve({"s": 2, "t": -2})
        assert res.total_cost == pytest.approx(3.0)
        assert res.flow_on(cheap) == 1 and res.flow_on(mid) == 1
        assert res.flow_on(dear) == 0

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_against_networkx(self, data):
        """Random bipartite transportation instances match network_simplex."""
        n_left = data.draw(st.integers(1, 4))
        n_right = data.draw(st.integers(1, 4))
        caps = [data.draw(st.integers(1, 3)) for _ in range(n_right)]
        supply = data.draw(st.integers(1, min(4, sum(caps))))
        costs = {
            (i, j): data.draw(st.integers(0, 9))
            for i in range(n_left)
            for j in range(n_right)
        }

        net = FlowNetwork()
        for i in range(n_left):
            net.add_arc("s", ("l", i), 2, 0.0)
            for j in range(n_right):
                net.add_arc(("l", i), ("r", j), 1, float(costs[(i, j)]))
        for j in range(n_right):
            net.add_arc(("r", j), "t", caps[j], 0.0)

        g = nx.DiGraph()
        for i in range(n_left):
            g.add_edge("s", f"l{i}", capacity=2, weight=0)
            for j in range(n_right):
                g.add_edge(f"l{i}", f"r{j}", capacity=1, weight=costs[(i, j)])
        for j in range(n_right):
            g.add_edge(f"r{j}", "t", capacity=caps[j], weight=0)
        g.nodes["s"]["demand"] = -supply
        g.nodes["t"]["demand"] = supply

        try:
            ref_cost = nx.cost_of_flow(g, nx.min_cost_flow(g))
        except nx.NetworkXUnfeasible:
            with pytest.raises(InfeasibleError):
                net.solve({"s": supply, "t": -supply})
            return
        res = net.solve({"s": supply, "t": -supply})
        assert res.total_cost == pytest.approx(ref_cost)


class TestTransportation:
    def test_matches_known(self):
        cost = np.array([[3.0, 1.0], [2.0, 4.0]])
        assign = solve_transportation(cost, [1, 2])
        assert list(assign) == [1, 0]

    def test_capacity_forces_spread(self):
        # Both rows prefer column 0, but it only holds one.
        cost = np.array([[1.0, 10.0], [1.0, 10.0]])
        assign = solve_transportation(cost, [1, 1])
        assert sorted(assign) == [0, 1]

    def test_insufficient_total_capacity(self):
        with pytest.raises(InfeasibleError):
            solve_transportation(np.ones((3, 2)), [1, 1])

    def test_forbidden_arcs_avoided(self):
        cost = np.array([[FORBIDDEN_COST, 2.0], [1.0, FORBIDDEN_COST]])
        assign = solve_transportation(cost, [1, 1])
        assert list(assign) == [1, 0]

    def test_all_forbidden_raises(self):
        cost = np.full((1, 2), FORBIDDEN_COST)
        with pytest.raises(InfeasibleError):
            solve_transportation(cost, [1, 1])

    def test_inf_treated_as_forbidden(self):
        cost = np.array([[np.inf, 5.0]])
        assert list(solve_transportation(cost, [1, 1])) == [1]

    def test_capacity_length_mismatch(self):
        with pytest.raises(OptimizationError):
            solve_transportation(np.ones((2, 2)), [1])

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_transportation_matches_ssp(self, data):
        """The fast path and the SSP solver agree on optimal cost."""
        n_rows = data.draw(st.integers(1, 5))
        n_cols = data.draw(st.integers(1, 4))
        caps = [data.draw(st.integers(1, 3)) for _ in range(n_cols)]
        if sum(caps) < n_rows:
            caps[0] += n_rows - sum(caps)
        cost = np.array(
            [[data.draw(st.integers(0, 9)) for _ in range(n_cols)] for _ in range(n_rows)],
            dtype=float,
        )
        assign = solve_transportation(cost, caps)
        fast_cost = cost[np.arange(n_rows), assign].sum()

        net = FlowNetwork()
        for i in range(n_rows):
            net.add_arc("s", ("row", i), 1, 0.0)
            for j in range(n_cols):
                net.add_arc(("row", i), ("col", j), 1, float(cost[i, j]))
        for j in range(n_cols):
            net.add_arc(("col", j), "t", caps[j], 0.0)
        res = net.solve({"s": n_rows, "t": -n_rows})
        assert fast_cost == pytest.approx(res.total_cost)
        # Capacities respected.
        counts = np.bincount(assign, minlength=n_cols)
        assert (counts <= np.array(caps)).all()

    def test_huge_capacity_does_not_expand(self):
        """A single effectively-unbounded ring must not allocate an
        n_rows x capacity cost expansion (regression: the dense
        replication used the raw capacity instead of min(cap, n_rows))."""
        n_rows = 6
        cost = np.arange(n_rows * 2, dtype=float).reshape(n_rows, 2)
        assign = solve_transportation(cost, [10**9, 10**9])
        # Clamping cannot change the optimum: everyone fits column 0.
        assert list(assign) == [0] * n_rows

    def test_huge_capacity_matches_clamped(self):
        cost = np.array([[1.0, 3.0], [4.0, 1.0], [2.0, 2.0]])
        huge = solve_transportation(cost, [10**12, 10**12])
        modest = solve_transportation(cost, [3, 3])
        assert list(huge) == list(modest)


class TestSolveReuseGuard:
    def test_second_solve_raises(self):
        """solve() drains capacities in place; a silent second solve used
        to compute flows over the residual graph."""
        net = FlowNetwork()
        net.add_arc("s", "t", 2, 1.0)
        net.solve({"s": 2, "t": -2})
        with pytest.raises(OptimizationError, match="already ran"):
            net.solve({"s": 2, "t": -2})

    def test_failed_validation_does_not_consume_network(self):
        """A rejected supply mapping must leave the network solvable."""
        net = FlowNetwork()
        net.add_arc("s", "t", 2, 1.0)
        with pytest.raises(OptimizationError, match="sum to zero"):
            net.solve({"s": 2, "t": -1})
        res = net.solve({"s": 2, "t": -2})
        assert res.total_flow == 2
