"""Clock-tree metrics: source-sink path lengths (Table II's PL column)."""

from __future__ import annotations

from dataclasses import dataclass

from .dme import ClockTree, TreeNode


@dataclass(frozen=True, slots=True)
class PathLengthStats:
    """Source-to-sink wire path statistics of a clock tree."""

    average: float
    maximum: float
    minimum: float
    num_sinks: int


def path_length_stats(tree: ClockTree) -> PathLengthStats:
    """Average/max/min wire length along root-to-sink paths.

    This is the paper's ``PL`` reference metric: "average source-sink
    path length in conventional clock trees".  Path lengths include any
    snaking detours inserted for zero skew.
    """
    lengths: list[float] = []

    def walk(node: TreeNode, acc: float) -> None:
        acc += node.edge_length
        if not node.children:
            lengths.append(acc)
            return
        for child in node.children:
            walk(child, acc)

    walk(tree.root, 0.0)  # the root's edge_length is 0 (no parent)
    return PathLengthStats(
        average=sum(lengths) / len(lengths),
        maximum=max(lengths),
        minimum=min(lengths),
        num_sinks=len(lengths),
    )
