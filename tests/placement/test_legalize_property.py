"""Property tests for the legalizer: legality under any input."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import BBox, Point
from repro.placement import legalize
from repro.placement.region import PlacementRegion


def make_region(rows: int, sites: int) -> PlacementRegion:
    return PlacementRegion(
        bbox=BBox(0, 0, sites * 3.0, rows * 12.0),
        row_height=12.0,
        site_width=3.0,
        num_rows=rows,
        sites_per_row=sites,
    )


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_legalization_is_always_legal(data):
    rows = data.draw(st.integers(2, 6))
    sites = data.draw(st.integers(2, 10))
    region = make_region(rows, sites)
    n = data.draw(st.integers(1, rows * sites))
    coord = st.floats(-50.0, 300.0, allow_nan=False, allow_infinity=False)
    raw = {
        f"c{i}": Point(data.draw(coord), data.draw(coord)) for i in range(n)
    }
    result = legalize(raw, region)
    # Every cell on a unique legal site inside the region.
    spots = set()
    for p in result.positions.values():
        assert region.bbox.contains(p)
        row = region.nearest_row(p.y)
        site = region.nearest_site(p.x)
        assert p.x == region.site_x(site)
        assert p.y == region.row_y(row)
        assert (row, site) not in spots
        spots.add((row, site))
    assert len(result.positions) == n
    assert result.total_displacement >= result.max_displacement >= 0.0
