"""Deferred-Merge Embedding (DME) with Manhattan-arc merging segments.

The paper's reference [5] (Chao, Hsu, Ho, Boese, Kahng, "Zero skew clock
routing with minimum wirelength"): instead of committing each merge point
immediately (as :mod:`repro.clocktree.dme` does), DME keeps, for every
internal node, the *locus* of all minimum-wirelength zero-skew placements
— a Manhattan arc — and only fixes locations in a final top-down pass.
This strictly reduces total wirelength relative to point merging.

Geometry is handled in 45-degree-rotated coordinates ``u = x + y``,
``v = x - y``: Manhattan distance becomes Chebyshev distance, Manhattan
arcs become axis-aligned segments, and a *tilted rectangular region*
(TRR — all points within radius ``r`` of a core arc) becomes an ordinary
axis-aligned rectangle.  Merging two TRRs is then rectangle intersection.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import Technology
from ..errors import ClockTreeError
from ..geometry import Point
from .dme import ClockTree, TreeNode, _merge_split, _wire_delay
from .topology import TopologyNode, build_topology

_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle in rotated (u, v) space.

    Degenerate rectangles (segments, points) are the common case: leaves
    are points and merging regions are Manhattan arcs.
    """

    ulo: float
    uhi: float
    vlo: float
    vhi: float

    def __post_init__(self) -> None:
        if self.uhi < self.ulo - _EPS or self.vhi < self.vlo - _EPS:
            raise ClockTreeError(f"empty rect: {self}")

    @staticmethod
    def from_point(p: Point) -> "Rect":
        u, v = p.x + p.y, p.x - p.y
        return Rect(u, u, v, v)

    def expanded(self, radius: float) -> "Rect":
        """The TRR of this core at the given radius (Chebyshev ball sum)."""
        if radius < 0:
            raise ClockTreeError("TRR radius cannot be negative")
        return Rect(
            self.ulo - radius, self.uhi + radius,
            self.vlo - radius, self.vhi + radius,
        )

    def intersect(self, other: "Rect") -> "Rect | None":
        ulo = max(self.ulo, other.ulo)
        uhi = min(self.uhi, other.uhi)
        vlo = max(self.vlo, other.vlo)
        vhi = min(self.vhi, other.vhi)
        if uhi < ulo - _EPS or vhi < vlo - _EPS:
            return None
        return Rect(ulo, max(ulo, uhi), vlo, max(vlo, vhi))

    def distance(self, other: "Rect") -> float:
        """Chebyshev distance (= Manhattan in original space)."""
        gap_u = max(0.0, other.ulo - self.uhi, self.ulo - other.uhi)
        gap_v = max(0.0, other.vlo - self.vhi, self.vlo - other.vhi)
        return max(gap_u, gap_v)

    def nearest(self, u: float, v: float) -> tuple[float, float]:
        """Closest point of the rectangle to ``(u, v)`` in Chebyshev."""
        return (
            min(max(u, self.ulo), self.uhi),
            min(max(v, self.vlo), self.vhi),
        )

    @property
    def center(self) -> tuple[float, float]:
        return 0.5 * (self.ulo + self.uhi), 0.5 * (self.vlo + self.vhi)


def _to_point(u: float, v: float) -> Point:
    return Point(0.5 * (u + v), 0.5 * (u - v))


@dataclass(slots=True)
class _MergeInfo:
    region: Rect
    delay: float
    cap: float
    edge_a: float
    edge_b: float
    child_a: "_Built | None"
    child_b: "_Built | None"
    name: str
    sink_location: Point | None = None  # leaves only


@dataclass(slots=True)
class _Built:
    info: _MergeInfo


def embed_zero_skew_dme(
    topology: TopologyNode,
    sink_caps: dict[str, float],
    tech: Technology,
) -> ClockTree:
    """Exact zero-skew DME embedding of ``topology``.

    Returns the same :class:`~repro.clocktree.dme.ClockTree` structure as
    the point-merging embedder, with total wirelength less than or equal
    to it on every instance (equal only when every merge is forced).
    """
    total_wl = [0.0]

    # ------------------------------------------------------------- up --
    def up(node: TopologyNode) -> _Built:
        if node.is_leaf:
            if node.location is None:
                raise ClockTreeError(f"leaf {node.name!r} has no location")
            cap = sink_caps.get(node.name)
            if cap is None:
                raise ClockTreeError(f"no sink capacitance for {node.name!r}")
            return _Built(
                _MergeInfo(
                    region=Rect.from_point(node.location),
                    delay=0.0,
                    cap=cap,
                    edge_a=0.0,
                    edge_b=0.0,
                    child_a=None,
                    child_b=None,
                    name=node.name,
                    sink_location=node.location,
                )
            )
        assert node.left is not None and node.right is not None
        a = up(node.left)
        b = up(node.right)
        ia, ib = a.info, b.info
        d = ia.region.distance(ib.region)
        ea, eb = _merge_split(ia.delay, ia.cap, ib.delay, ib.cap, d, tech)
        region = ia.region.expanded(ea).intersect(ib.region.expanded(eb))
        if region is None:
            # Numerical slack: puff both TRRs marginally.
            region = (
                ia.region.expanded(ea + 1e-6).intersect(
                    ib.region.expanded(eb + 1e-6)
                )
            )
        if region is None:
            raise ClockTreeError(
                f"DME merge produced an empty region at {node.name}"
            )
        total_wl[0] += ea + eb
        delay = ia.delay + _wire_delay(ea, ia.cap, tech)
        cap = ia.cap + ib.cap + tech.wire_cap(ea) + tech.wire_cap(eb)
        return _Built(
            _MergeInfo(
                region=region,
                delay=delay,
                cap=cap,
                edge_a=ea,
                edge_b=eb,
                child_a=a,
                child_b=b,
                name=node.name,
            )
        )

    root_built = up(topology)

    # ----------------------------------------------------------- down --
    def down(built: _Built, parent_uv: tuple[float, float] | None) -> TreeNode:
        info = built.info
        if parent_uv is None:
            u, v = info.region.center
        else:
            u, v = info.region.nearest(*parent_uv)
        location = (
            info.sink_location
            if info.sink_location is not None
            else _to_point(u, v)
        )
        node = TreeNode(
            name=info.name,
            location=location,
            edge_length=0.0,  # patched by the caller below
            subtree_delay=info.delay,
            subtree_cap=info.cap,
        )
        if info.child_a is not None and info.child_b is not None:
            child_a = down(info.child_a, (u, v))
            child_b = down(info.child_b, (u, v))
            child_a.edge_length = info.edge_a
            child_b.edge_length = info.edge_b
            node.children = [child_a, child_b]
        return node

    root = down(root_built, None)
    return ClockTree(root=root, total_wirelength=total_wl[0])


def synthesize_clock_tree_dme(
    sinks: dict[str, Point],
    tech: Technology,
    sink_cap: float | None = None,
) -> ClockTree:
    """Convenience: topology + exact DME embedding."""
    cap = tech.flipflop_input_cap if sink_cap is None else sink_cap
    topo = build_topology(dict(sinks))
    return embed_zero_skew_dme(topo, {name: cap for name in sinks}, tech)
