"""repro.lint — determinism sanitizer for the repo's own sources.

Two halves of one guarantee:

* a **static pass** (``repro lint``): an AST linter with determinism
  rules ``DET0xx`` (hash-ordered set iteration, unsorted filesystem
  listings, global RNG state, wall-clock reads, order-unstable float
  reductions) and API-hygiene rules ``API0xx`` (mutable defaults,
  swallowed exceptions, unannotated public functions), reported in the
  same text/JSON/SARIF formats — and under the same exit 0/1/2
  contract — as the PR-2 design-rule checker;
* a **runtime sanitizer** (:class:`Sanitizer`, ``REPRO_SANITIZE=1``,
  ``FlowOptions(sanitize=True)``): tripwires over ``time.time`` and the
  global ``random`` / ``numpy.random`` state that confirm dynamically
  what the static pass claims.

Suppressions are inline pragmas with mandatory justification::

    x = risky()  # repro: lint-disable=DET001 -- order folded into a set
"""

from .engine import LintConfig, lint_paths, lint_source
from .findings import LintFinding, LintReport, Severity
from .pragmas import Pragma, scan_pragmas
from .reporters import render_json, render_sarif, render_text, sarif_document
from .rules import LintRule, registered_lint_rules, rule_by_code
from .sanitize import SANITIZE_ENV, Sanitizer, sanitize_action_from_env

__all__ = [
    "LintConfig",
    "LintFinding",
    "LintReport",
    "LintRule",
    "Pragma",
    "SANITIZE_ENV",
    "Sanitizer",
    "Severity",
    "lint_paths",
    "lint_source",
    "registered_lint_rules",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_by_code",
    "sanitize_action_from_env",
    "sarif_document",
    "scan_pragmas",
]
