"""Congestion-aware global routing over a G-cell grid."""

from .grid import GCell, RoutingError, RoutingGrid
from .router import GlobalRouter, Route, RoutingResult, route_clock_stubs, route_design

__all__ = [
    "GCell",
    "RoutingGrid",
    "RoutingError",
    "GlobalRouter",
    "Route",
    "RoutingResult",
    "route_design",
    "route_clock_stubs",
]
