"""Tests for the ring-count sweep (§IX extension)."""

import pytest

from repro import FlowOptions
from repro.constants import DEFAULT_TECHNOLOGY
from repro.core import sweep_ring_count
from repro.netlist import generate_circuit, small_profile

TECH = DEFAULT_TECHNOLOGY


@pytest.fixture(scope="module")
def sweep():
    circuit = generate_circuit(small_profile(num_cells=180, num_flipflops=28, seed=41))
    options = FlowOptions(max_iterations=2)
    return sweep_ring_count(circuit, TECH, options, grid_sides=(1, 2, 3))


class TestRingSweep:
    def test_all_points_present(self, sweep):
        assert [p.grid_side for p in sweep.points] == [1, 2, 3]
        assert [p.num_rings for p in sweep.points] == [1, 4, 9]

    def test_best_minimizes_clock_wirelength(self, sweep):
        best_wl = min(p.clock_wirelength for p in sweep.points)
        assert sweep.best.clock_wirelength == pytest.approx(best_wl)

    def test_more_rings_shorter_stubs(self, sweep):
        """Tapping wirelength decreases (weakly) as rings densify."""
        taps = [p.tapping_wirelength for p in sweep.points]
        assert taps[-1] < taps[0]

    def test_ring_wirelength_grows(self, sweep):
        ring_wl = [p.ring_wirelength for p in sweep.points]
        assert ring_wl == sorted(ring_wl)

    def test_rows_export(self, sweep):
        rows = sweep.as_rows()
        assert len(rows) == 3
        assert sum(row["selected"] for row in rows) == 1.0
        for row in rows:
            assert row["clock_wl_um"] == pytest.approx(
                row["tapping_wl_um"] + row["ring_wl_um"]
            )

    def test_empty_sides_rejected(self):
        circuit = generate_circuit(small_profile(seed=1))
        with pytest.raises(ValueError):
            sweep_ring_count(circuit, TECH, FlowOptions(), grid_sides=())
