"""Integration tests for the full Fig. 3 methodology flow."""

import pytest

from repro import FlowOptions, IntegratedFlow
from repro.constants import DEFAULT_TECHNOLOGY
from repro.errors import ReproError
from repro.netlist import Circuit, generate_circuit, small_profile
from repro.rotary import stub_delay
from repro.timing import SequentialTiming, validate_schedule

TECH = DEFAULT_TECHNOLOGY


@pytest.fixture(scope="module")
def flow_result():
    circuit = generate_circuit(small_profile(num_cells=160, num_flipflops=24, seed=11))
    return circuit, IntegratedFlow(
        circuit, options=FlowOptions(ring_grid_side=2)
    ).run()


class TestFlowResult:
    def test_improves_tapping_cost(self, flow_result):
        _, res = flow_result
        assert res.final.tapping_wirelength < res.base.tapping_wirelength
        assert res.tapping_improvement > 0.0

    def test_history_and_records(self, flow_result):
        _, res = flow_result
        assert res.history
        # final is the best-cost iterate of the history.
        assert res.final in res.history
        assert res.final.overall_cost == min(r.overall_cost for r in res.history)
        assert res.base.iteration == 0
        assert [r.iteration for r in res.history] == list(
            range(1, len(res.history) + 1)
        )

    def test_iteration_limit_respected(self, flow_result):
        _, res = flow_result
        assert len(res.history) <= FlowOptions().max_iterations

    def test_cost_cache_counters_recorded(self, flow_result):
        """Every iteration reports cache activity; the assignment
        realization is always served from the stage-3 matrix build, so
        each iteration records hits."""
        _, res = flow_result
        for rec in res.history:
            assert rec.cost_cache_misses > 0
            assert rec.cost_cache_hits > 0
            assert 0.0 < rec.cost_cache_hit_rate < 1.0

    def test_assignment_covers_all_flipflops(self, flow_result):
        circuit, res = flow_result
        ffs = {ff.name for ff in circuit.flip_flops}
        assert set(res.assignment.ring_of) == ffs
        assert set(res.assignment.solutions) == ffs

    def test_capacities_respected(self, flow_result):
        circuit, res = flow_result
        caps = res.array.default_capacities(len(circuit.flip_flops))
        occ = res.assignment.ring_occupancy(res.array)
        assert (occ <= caps).all()

    def test_tapping_solutions_satisfy_targets(self, flow_result):
        """Every final tapping point must hit its skew target (eq. 1)."""
        _, res = flow_result
        period = res.array.period
        for ff, sol in res.assignment.solutions.items():
            ring = res.array[res.assignment.ring_of[ff]]
            seg = ring.segments()[sol.segment_index]
            achieved = (
                seg.t0
                - sol.periods_borrowed * period
                + seg.rho * sol.x
                + stub_delay(sol.wirelength, TECH)
            )
            target = res.schedule.targets[ff] % period
            assert achieved == pytest.approx(target, abs=1e-5)

    def test_final_schedule_meets_timing(self, flow_result):
        """Recompute STA on the final placement: the schedule must honor
        the guaranteed slack."""
        circuit, res = flow_result
        timing = SequentialTiming(circuit, res.positions, TECH)
        violations = validate_schedule(
            res.schedule.targets,
            timing.pairs,
            1000.0,
            TECH,
            slack=res.slack_guaranteed - 1e-6,
        )
        assert violations == []

    def test_positions_inside_die(self, flow_result):
        circuit, res = flow_result
        # All standard cells have legal positions (pads live on the edge).
        for cell in circuit.standard_cells:
            assert cell.name in res.positions

    def test_seconds_accounted(self, flow_result):
        _, res = flow_result
        assert res.seconds_algorithm > 0.0
        assert res.seconds_placer > 0.0


class TestFlowOptionsVariants:
    def test_ilp_engine(self):
        circuit = generate_circuit(small_profile(num_cells=140, num_flipflops=20, seed=3))
        res = IntegratedFlow(
            circuit, options=FlowOptions(ring_grid_side=2, assignment="ilp")
        ).run()
        assert res.ilp_stats is not None
        assert res.ilp_stats.integrality_gap >= 1.0 - 1e-9

    def test_ilp_reduces_max_cap_vs_flow(self):
        circuit = generate_circuit(small_profile(num_cells=200, num_flipflops=32, seed=9))
        flow = IntegratedFlow(
            circuit, options=FlowOptions(ring_grid_side=2, assignment="flow")
        ).run()
        ilp = IntegratedFlow(
            circuit, options=FlowOptions(ring_grid_side=2, assignment="ilp")
        ).run()
        assert (
            ilp.final.max_load_capacitance
            <= flow.final.max_load_capacitance + 1e-6
        )

    def test_minmax_skew_mode(self):
        circuit = generate_circuit(small_profile(num_cells=120, num_flipflops=16, seed=5))
        res = IntegratedFlow(
            circuit, options=FlowOptions(ring_grid_side=2, skew_mode="minmax")
        ).run()
        assert res.final.tapping_wirelength <= res.base.tapping_wirelength

    def test_single_iteration(self):
        circuit = generate_circuit(small_profile(num_cells=120, num_flipflops=16, seed=6))
        res = IntegratedFlow(
            circuit, options=FlowOptions(ring_grid_side=2, max_iterations=1)
        ).run()
        assert len(res.history) == 1

    def test_no_flipflops_rejected(self):
        from repro.netlist import CellKind

        c = Circuit("comb")
        c.add_input("a")
        c.add_gate("g", CellKind.NOT, ("a",))
        c.add_output("g")
        c.validate()
        with pytest.raises(ReproError):
            IntegratedFlow(c)
