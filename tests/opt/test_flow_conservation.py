"""Flow-conservation and cost-accounting invariants of the SSP solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opt import FlowNetwork


def random_instance(data):
    n_left = data.draw(st.integers(1, 4))
    n_right = data.draw(st.integers(1, 4))
    caps = [data.draw(st.integers(1, 3)) for _ in range(n_right)]
    supply = data.draw(st.integers(1, min(6, sum(caps), n_left * 2)))
    costs = np.array(
        [
            [data.draw(st.integers(0, 9)) for _ in range(n_right)]
            for _ in range(n_left)
        ],
        dtype=float,
    )
    return n_left, n_right, caps, supply, costs


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_flow_conservation_and_cost(data):
    n_left, n_right, caps, supply, costs = random_instance(data)
    net = FlowNetwork()
    left_arcs = {}
    mid_arcs = {}
    right_arcs = {}
    for i in range(n_left):
        left_arcs[i] = net.add_arc("s", ("l", i), 2, 0.0)
        for j in range(n_right):
            mid_arcs[(i, j)] = net.add_arc(("l", i), ("r", j), 1, float(costs[i, j]))
    for j in range(n_right):
        right_arcs[j] = net.add_arc(("r", j), "t", caps[j], 0.0)

    from repro.errors import InfeasibleError

    try:
        res = net.solve({"s": supply, "t": -supply})
    except InfeasibleError:
        # Mid-layer arcs may bottleneck below the declared capacities.
        assert supply > 0
        return

    # Conservation at every intermediate node.
    for i in range(n_left):
        inflow = res.flow_on(left_arcs[i])
        outflow = sum(res.flow_on(mid_arcs[(i, j)]) for j in range(n_right))
        assert inflow == outflow
    for j in range(n_right):
        inflow = sum(res.flow_on(mid_arcs[(i, j)]) for i in range(n_left))
        outflow = res.flow_on(right_arcs[j])
        assert inflow == outflow
        assert outflow <= caps[j]

    # Cost accounting: reported cost equals sum of arc flows x costs.
    recomputed = sum(
        res.flow_on(mid_arcs[(i, j)]) * costs[i, j]
        for i in range(n_left)
        for j in range(n_right)
    )
    assert res.total_cost == pytest.approx(recomputed)
    assert res.total_flow == supply
