"""Render a :class:`~repro.lint.findings.LintReport`.

The same three formats the design-rule checker established: a human
``text`` listing, a machine ``json`` document, and SARIF 2.1.0 for
code-scanning UIs.  Lint findings carry *physical* locations (file,
line, column), so the SARIF results use ``physicalLocation`` regions
where ``repro check`` uses logical design-object locations.
"""

from __future__ import annotations

import json
from typing import Any

from ..analysis.reporters import SARIF_SCHEMA_URI, SARIF_VERSION
from .findings import LintReport
from .rules import registered_lint_rules

TOOL_NAME = "repro-lint"

__all__ = [
    "TOOL_NAME",
    "render_json",
    "render_sarif",
    "render_text",
    "sarif_document",
]


def _tool_version() -> str:
    from .. import __version__

    return str(__version__)


def render_text(report: LintReport) -> str:
    """Human-readable listing: one line per finding plus a summary."""
    lines = [f.format() for f in report.findings]
    by_sev = report.counts_by_severity
    summary = ", ".join(f"{n} {sev}" for sev, n in sorted(by_sev.items())) or "clean"
    n_suppressed = sum(len(codes) for codes in report.suppressed.values())
    lines.append(
        f"{len(report.findings)} finding(s) ({summary}) in "
        f"{len(report.files_checked)} file(s); "
        f"{len(report.rules_run)} rule(s) run, "
        f"{n_suppressed} justified suppression(s)"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Stable JSON document with findings and per-code counts."""
    doc = {
        "findings": [f.as_dict() for f in report.findings],
        "counts_by_code": report.counts_by_code,
        "counts_by_severity": report.counts_by_severity,
        "files_checked": list(report.files_checked),
        "rules_run": list(report.rules_run),
        "suppressed": {
            path: list(codes)
            for path, codes in sorted(report.suppressed.items())
        },
    }
    return json.dumps(doc, indent=2, sort_keys=False)


def sarif_document(report: LintReport) -> dict[str, Any]:
    """The SARIF 2.1.0 log object for one lint run."""
    rules = registered_lint_rules()
    rule_index = {r.code: i for i, r in enumerate(rules)}
    descriptors: list[dict[str, Any]] = [
        {
            "id": r.code,
            "name": r.name,
            "shortDescription": {"text": r.description},
            "defaultConfiguration": {"level": r.default_severity.sarif_level},
        }
        for r in rules
    ]
    results: list[dict[str, Any]] = []
    for f in report.findings:
        message = f.message if not f.hint else f"{f.message}. Hint: {f.hint}"
        result: dict[str, Any] = {
            "ruleId": f.code,
            "level": f.severity.sarif_level,
            "message": {"text": message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.column,
                        },
                    }
                }
            ],
        }
        idx = rule_index.get(f.code)
        if idx is not None:
            result["ruleIndex"] = idx
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": _tool_version(),
                        "informationUri": (
                            "https://github.com/paper-repro/rotary-clocking"
                        ),
                        "rules": descriptors,
                    }
                },
                "invocations": [
                    {"executionSuccessful": not report.has_errors}
                ],
                "results": results,
            }
        ],
    }


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 JSON text."""
    return json.dumps(sarif_document(report), indent=2)
