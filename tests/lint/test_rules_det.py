"""Per-rule fixtures for the DET determinism rules.

Each rule gets at least one *bad* snippet that must fire and one *good*
snippet (the sanctioned rewrite) that must stay clean — the contract the
``repro lint src/`` self-check relies on.
"""

from textwrap import dedent

import pytest

from repro.lint import lint_source


def codes(source: str) -> list[str]:
    return [f.code for f in lint_source(dedent(source))]


class TestDet001SetIteration:
    def test_for_over_set_literal(self):
        assert codes("for x in {1, 2, 3}:\n    pass\n") == ["DET001"]

    def test_for_over_set_call(self):
        assert codes("for x in set(items):\n    pass\n") == ["DET001"]

    def test_for_over_frozenset(self):
        assert codes("for x in frozenset(items):\n    pass\n") == ["DET001"]

    def test_for_over_tracked_set_variable(self):
        src = """
        seen = set()
        for x in seen:
            pass
        """
        assert codes(src) == ["DET001"]

    def test_for_over_set_union(self):
        src = """
        a = set()
        b = set()
        for x in a | b:
            pass
        """
        assert codes(src) == ["DET001"]

    def test_for_over_dict_keys_union(self):
        assert codes("for k in d1.keys() | d2.keys():\n    pass\n") == [
            "DET001"
        ]

    def test_comprehension_over_set(self):
        assert codes("out = [x for x in {1, 2}]\n") == ["DET001"]

    def test_list_materializing_set(self):
        assert codes("out = list({1, 2, 3})\n") == ["DET001"]

    def test_set_method_results_are_setish(self):
        src = """
        a = set()
        for x in a.intersection(b):
            pass
        """
        assert codes(src) == ["DET001"]

    def test_sorted_set_is_clean(self):
        assert codes("for x in sorted({1, 2, 3}):\n    pass\n") == []

    def test_sorted_union_is_clean(self):
        assert codes("for k in sorted(d1.keys() | d2.keys()):\n    pass\n") == []

    def test_plain_list_iteration_is_clean(self):
        assert codes("for x in [1, 2, 3]:\n    pass\n") == []

    def test_dict_iteration_is_clean(self):
        # Python dicts preserve insertion order — not a hazard by itself.
        assert codes("for k in d:\n    pass\n") == []

    def test_set_comprehension_stays_unordered(self):
        # set -> set keeps no order; flagging it would force useless sorts.
        assert codes("out = {x for x in {1, 2}}\n") == []

    def test_membership_test_is_clean(self):
        assert codes("flag = 3 in {1, 2, 3}\n") == []

    def test_len_of_set_is_clean(self):
        assert codes("n = len({1, 2, 3})\n") == []

    def test_reassignment_to_list_unmarks(self):
        src = """
        items = set()
        items = sorted(items)
        for x in items:
            pass
        """
        assert codes(src) == []


class TestDet002UnsortedListing:
    def test_listdir(self):
        src = """
        import os
        names = os.listdir(".")
        """
        assert codes(src) == ["DET002"]

    def test_glob(self):
        src = """
        import glob
        files = glob.glob("*.py")
        """
        assert codes(src) == ["DET002"]

    def test_pathlib_iterdir(self):
        assert codes("files = path.iterdir()\n") == ["DET002"]

    def test_pathlib_rglob(self):
        assert codes('files = root.rglob("*.py")\n') == ["DET002"]

    def test_sorted_listdir_is_clean(self):
        src = """
        import os
        names = sorted(os.listdir("."))
        """
        assert codes(src) == []

    def test_sorted_rglob_is_clean(self):
        assert codes('files = sorted(root.rglob("*.py"))\n') == []

    def test_aliased_import(self):
        src = """
        import os.path
        import os as o
        names = o.listdir(".")
        """
        assert codes(src) == ["DET002"]


class TestDet003GlobalRng:
    def test_random_module_function(self):
        src = """
        import random
        x = random.random()
        """
        assert codes(src) == ["DET003"]

    def test_random_shuffle(self):
        src = """
        import random
        random.shuffle(items)
        """
        assert codes(src) == ["DET003"]

    def test_numpy_legacy_rand(self):
        src = """
        import numpy as np
        x = np.random.rand(3)
        """
        assert codes(src) == ["DET003"]

    def test_numpy_global_seed(self):
        src = """
        import numpy as np
        np.random.seed(0)
        """
        assert codes(src) == ["DET003"]

    def test_seeded_instance_is_clean(self):
        src = """
        import random
        rng = random.Random(42)
        x = rng.random()
        """
        assert codes(src) == []

    def test_default_rng_is_clean(self):
        src = """
        import numpy as np
        rng = np.random.default_rng(7)
        x = rng.normal()
        """
        assert codes(src) == []

    def test_seed_sequence_is_clean(self):
        src = """
        import numpy as np
        ss = np.random.SeedSequence(1)
        """
        assert codes(src) == []


class TestDet004WallClock:
    def test_time_time(self):
        src = """
        import time
        t = time.time()
        """
        assert codes(src) == ["DET004"]

    def test_time_ns(self):
        src = """
        import time
        t = time.time_ns()
        """
        assert codes(src) == ["DET004"]

    def test_datetime_now(self):
        src = """
        import datetime
        t = datetime.datetime.now()
        """
        assert codes(src) == ["DET004"]

    def test_monotonic_is_clean(self):
        src = """
        import time
        t0 = time.monotonic()
        t1 = time.perf_counter()
        """
        assert codes(src) == []


class TestDet005UnorderedReduction:
    def test_sum_over_set_variable(self):
        src = """
        vals = set()
        total = sum(vals)
        """
        assert codes(src) == ["DET005"]

    def test_sum_over_genexp_over_set(self):
        src = """
        vals = set()
        total = sum(v * 2 for v in vals)
        """
        assert codes(src) == ["DET005"]

    def test_sum_over_sorted_is_clean(self):
        src = """
        vals = set()
        total = sum(sorted(vals))
        """
        assert codes(src) == []

    def test_sum_over_list_is_clean(self):
        assert codes("total = sum([1.0, 2.0])\n") == []


def test_findings_carry_location_and_hint():
    (finding,) = lint_source("for x in {1, 2}:\n    pass\n", path="m.py")
    assert finding.path == "m.py"
    assert finding.line == 1
    assert finding.column >= 1
    assert finding.rule == "set-iteration"
    assert "sorted" in finding.hint or "sorted" in finding.message


@pytest.mark.parametrize(
    "source",
    [
        "for x in {1}:\n    pass\n",
        "import os\nos.listdir('.')\n",
        "import random\nrandom.random()\n",
        "import time\ntime.time()\n",
        "v = set()\nsum(v)\n",
    ],
)
def test_det_rules_default_to_error(source):
    findings = lint_source(source)
    assert findings and all(f.severity.name == "ERROR" for f in findings)


class TestDet006KernelGlobalMutation:
    def test_global_rebind_in_kernel(self):
        src = """
        from repro.parallel import chunk_kernel

        _TOTAL = 0

        @chunk_kernel("demo.total")
        def kernel(views, lo, hi):
            global _TOTAL
            _TOTAL += hi - lo
        """
        assert "DET006" in codes(src)

    def test_subscript_store_into_module_dict(self):
        src = """
        from repro.parallel import chunk_kernel

        _CACHE = {}

        @chunk_kernel("demo.cache")
        def kernel(views, lo, hi):
            _CACHE[lo] = hi
        """
        assert "DET006" in codes(src)

    def test_mutating_method_on_module_list(self):
        src = """
        from repro.parallel import chunk_kernel

        _SEEN = []

        @chunk_kernel("demo.seen")
        def kernel(views, lo, hi):
            _SEEN.append(lo)
        """
        assert "DET006" in codes(src)

    def test_attribute_qualified_decorator_is_recognized(self):
        src = """
        import repro.parallel as par

        _STATE = {}

        @par.chunk_kernel("demo.attr")
        def kernel(views, lo, hi):
            _STATE[lo] = hi
        """
        assert "DET006" in codes(src)

    def test_view_writes_and_locals_are_clean(self):
        src = """
        from repro.parallel import chunk_kernel

        _CACHE = {}

        @chunk_kernel("demo.clean")
        def kernel(views, lo, hi):
            scratch = []
            scratch.append(lo)
            views["out"][lo:hi] = 1.0
        """
        assert "DET006" not in codes(src)

    def test_non_kernel_function_is_exempt(self):
        src = """
        _CACHE = {}

        def helper(lo, hi):
            _CACHE[lo] = hi
        """
        assert "DET006" not in codes(src)

    def test_pragma_suppresses_with_justification(self):
        from repro.lint import lint_source
        from textwrap import dedent

        src = """
        from repro.parallel import chunk_kernel

        _CACHE = {}

        @chunk_kernel("demo.suppressed")
        def kernel(views, lo, hi):
            _CACHE[lo] = hi  # repro: lint-disable=DET006 -- single-threaded test fixture
        """
        findings = lint_source(dedent(src))
        assert "DET006" not in [f.code for f in findings]
