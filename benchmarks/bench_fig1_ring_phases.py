"""Fig. 1: clock phases around a rotary ring and the array's equal-phase
points.  The timed kernel is ring-array generation plus phase sampling.
"""

import pytest

from repro.experiments import (
    fig1_array_equal_phase_points,
    fig1_ring_phases,
    format_table,
)
from repro.geometry import BBox
from repro.rotary import RingArray

from conftest import record_artifact


@pytest.fixture(scope="module")
def fig1_artifact():
    array = RingArray(BBox(0, 0, 1000, 1000), side=4, period=1000.0)
    phase_rows = fig1_ring_phases(array[0], samples=8)
    point_rows = fig1_array_equal_phase_points(array)
    record_artifact(
        "Fig. 1(a)",
        format_table(phase_rows, "Fig. 1(a) - phase around one rotary ring"),
    )
    record_artifact(
        "Fig. 1(b)",
        format_table(
            point_rows[:6],
            "Fig. 1(b) - equal-phase points of the ring array (first 6 rings)",
        ),
    )
    return phase_rows


def test_bench_ring_phase_sampling(benchmark, fig1_artifact):
    phases = [row["phase_deg"] for row in fig1_artifact]
    assert phases == sorted(phases)  # monotone around the loop

    def build_and_sample():
        array = RingArray(BBox(0, 0, 1000, 1000), side=7, period=1000.0)
        return [fig1_ring_phases(ring, samples=16) for ring in array]

    rows = benchmark(build_and_sample)
    assert len(rows) == 49
