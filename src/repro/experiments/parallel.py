"""Parallel, fault-tolerant experiment orchestration.

The serial :class:`~repro.experiments.runner.ExperimentSuite` runs every
circuit and both assignment engines strictly back to back; this module
fans the (circuit x engine) task matrix out over a
:class:`concurrent.futures.ProcessPoolExecutor` and hardens every task:

* **per-task timeouts** — tasks are dispatched in waves no larger than
  the worker count (so every submitted task starts immediately and its
  wall-clock deadline is honest); a task that exceeds the deadline has
  its whole pool generation torn down (hung workers are terminated) and
  is requeued, while innocent wave-mates are requeued without penalty;
* **bounded retries with exponential backoff** — a crashed (killed
  worker), timed-out, or erroring task is retried up to
  ``max_retries`` times, waiting ``backoff_seconds * 2**(attempt-1)``
  between attempts;
* **checkpoint/resume** — completed circuits are written through the
  suite's :class:`~repro.experiments.checkpoint.CheckpointStore`; with
  ``suite.resume`` they are served from disk and never re-run;
* **trace merging** — each worker runs its flow under a recording
  collector and ships the final counters/gauges home, where they are
  folded into the parent collector next to the runner's own task
  latency, retry, timeout, and crash metrics.

Workers return ``FlowResult.to_dict()`` documents rather than live
objects; the parent rebuilds them with ``FlowResult.from_dict``, the
exact code path a checkpoint load takes.  Every float survives both
trips bit-identically, so a parallel, a resumed, and a serial suite
produce the same tables.

For tests and CI smoke runs, the ``REPRO_EXPERIMENTS_FAULT`` environment
variable injects worker faults: a comma-separated list of
``circuit:engine:mode[:max_attempt]`` specs where mode is ``crash``
(hard ``os._exit``, indistinguishable from a kill), ``hang`` (sleep
until the timeout fires), or ``error`` (raise), and ``*`` matches any
circuit/engine.  Faults fire only while ``attempt <= max_attempt``
(default: always), so a ``...:1`` spec exercises the retry path.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass
from typing import Any, Mapping

from ..constants import Technology
from ..core import FlowOptions, FlowResult, IntegratedFlow
from ..netlist import generate_circuit
from ..obs import NULL_COLLECTOR, Collector, TraceCollector
from .pool import WaveFailure, WaveTask, backoff_delay, run_wave
from .runner import ExperimentSuite, profile_for

#: Environment variable holding fault-injection specs (tests/CI only).
FAULT_ENV = "REPRO_EXPERIMENTS_FAULT"

ENGINES = ("flow", "ilp")


@dataclass(frozen=True, slots=True)
class ParallelOptions:
    """Configuration of the parallel runner."""

    #: Worker processes (and the maximum wave size).
    workers: int = 2
    #: Per-task wall-clock deadline in seconds (None disables).
    timeout: float | None = None
    #: Retries after the first attempt of each task.
    max_retries: int = 2
    #: Base of the exponential backoff between attempts (seconds).
    backoff_seconds: float = 0.5


@dataclass(frozen=True, slots=True)
class TaskFailure:
    """One task that exhausted its retry budget."""

    circuit: str
    engine: str
    #: ``"crash"`` (worker died), ``"timeout"``, or ``"error"`` (raised).
    kind: str
    attempts: int
    message: str


@dataclass(frozen=True, slots=True)
class SuiteRunReport:
    """Outcome and fault statistics of one parallel suite run."""

    #: Circuits whose experiments were computed this run.
    completed: tuple[str, ...]
    #: Circuits served from the checkpoint store (resume).
    resumed: tuple[str, ...]
    #: Circuits that could not be completed, with their task failures.
    failed: tuple[TaskFailure, ...]
    retries: int
    timeouts: int
    crashes: int
    seconds: float

    @property
    def ok(self) -> bool:
        return not self.failed


# ----------------------------------------------------------------------
# Worker side (runs in the pool processes; must stay module-level
# picklable and import-light).
# ----------------------------------------------------------------------
def _maybe_inject_fault(circuit: str, engine: str, attempt: int) -> None:
    """Honor ``REPRO_EXPERIMENTS_FAULT`` (test/CI hook; no-op otherwise)."""
    raw = os.environ.get(FAULT_ENV, "")
    if not raw.strip():
        return
    for spec in raw.split(","):
        parts = [p.strip() for p in spec.strip().split(":")]
        if len(parts) < 3:
            continue
        c, e, mode = parts[0], parts[1], parts[2]
        limit = int(parts[3]) if len(parts) > 3 else 1 << 30
        if c not in ("*", circuit) or e not in ("*", engine):
            continue
        if attempt > limit:
            continue
        if mode == "crash":
            # A hard exit, skipping interpreter teardown: the parent sees
            # the same BrokenExecutor a SIGKILLed worker would produce.
            os._exit(17)
        elif mode == "hang":
            time.sleep(3600.0)
        elif mode == "error":
            raise RuntimeError(
                f"injected fault for task {circuit}/{engine} "
                f"(attempt {attempt})"
            )


def _execute_task(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Run one (circuit, engine) flow in a worker process.

    Returns a picklable document: the serialized flow result plus the
    worker's trace counters/gauges and wall-clock, which the parent
    merges into its collector.
    """
    circuit_name = payload["circuit"]
    engine = payload["engine"]
    _maybe_inject_fault(circuit_name, engine, int(payload["attempt"]))
    options = FlowOptions.from_dict(payload["options"])
    tech = Technology(**payload["tech"])
    circuit = generate_circuit(profile_for(circuit_name))
    collector = TraceCollector()
    start = time.perf_counter()
    result = IntegratedFlow(circuit, tech, options, collector=collector).run()
    seconds = time.perf_counter() - start
    trace = collector.trace()
    return {
        "circuit": circuit_name,
        "engine": engine,
        "result": result.to_dict(),
        "seconds": seconds,
        "counters": dict(trace.counters),
        "gauges": dict(trace.gauges),
    }


# ----------------------------------------------------------------------
# Parent side (wave scheduling itself lives in repro.experiments.pool,
# shared with the repro.server worker pool).
# ----------------------------------------------------------------------
class ParallelSuiteRunner:
    """Fans a suite's (circuit x engine) matrix over worker processes."""

    def __init__(
        self,
        suite: ExperimentSuite,
        options: ParallelOptions | None = None,
        collector: Collector = NULL_COLLECTOR,
    ) -> None:
        self.suite = suite
        self.options = options or ParallelOptions()
        if self.options.workers < 1:
            raise ValueError("ParallelOptions.workers must be >= 1")
        self.collector = collector

    # ------------------------------------------------------------------
    def _task_for(self, name: str, engine: str) -> WaveTask:
        payload = {
            "circuit": name,
            "engine": engine,
            "attempt": 1,
            "options": self.suite.options_for(name, engine).to_dict(),
            "tech": asdict(self.suite.tech),
        }
        return WaveTask(key=(name, engine), payload=payload)

    def run(self) -> SuiteRunReport:
        """Run every missing circuit; returns the fault-statistics report.

        Completed circuits land in the suite's cache (and checkpoint
        store); failed ones land in ``suite.failures`` so the table
        generators degrade to annotated partial rows.
        """
        opts = self.options
        suite = self.suite
        t_start = time.perf_counter()

        resumed: list[str] = []
        todo: list[str] = []
        for name in suite.names:
            if suite.is_cached(name):
                continue
            if suite.load_checkpoint(name) is not None:
                resumed.append(name)
                self.collector.count("experiments.checkpoint-loads")
                continue
            todo.append(name)

        pending: list[WaveTask] = [
            self._task_for(name, engine)
            for name in todo
            for engine in ENGINES
        ]
        self.collector.count("experiments.tasks-scheduled", len(pending))
        results: dict[tuple[str, str], dict[str, Any]] = {}
        failures: list[TaskFailure] = []
        retries = timeouts = crashes = 0

        while pending:
            now = time.monotonic()
            due = [t for t in pending if t.not_before <= now]
            if not due:
                time.sleep(
                    max(0.0, min(t.not_before for t in pending) - now)
                )
                continue
            # Waves never exceed the worker count: every submitted task
            # starts executing immediately, so its deadline is honest.
            wave = due[: opts.workers]
            pending = [t for t in pending if t not in wave]
            done, soft_failed = self._run_wave(wave)
            results.update(done)

            for task, kind, message, penalize in soft_failed:
                if not penalize:
                    # Innocent victim of a torn-down pool generation:
                    # requeue at the same attempt, no backoff.
                    pending.append(task)
                    continue
                if kind == "timeout":
                    timeouts += 1
                    self.collector.count("experiments.timeouts")
                elif kind == "crash":
                    crashes += 1
                    self.collector.count("experiments.crashes")
                task.last_kind = kind
                task.last_message = message
                circuit_name, engine = task.key
                if task.attempt > opts.max_retries:
                    failures.append(
                        TaskFailure(
                            circuit=str(circuit_name),
                            engine=str(engine),
                            kind=kind,
                            attempts=task.attempt,
                            message=message,
                        )
                    )
                    self.collector.count("experiments.task-failures")
                    continue
                retries += 1
                self.collector.count("experiments.retries")
                task.attempt += 1
                task.payload["attempt"] = task.attempt
                task.not_before = time.monotonic() + backoff_delay(
                    opts.backoff_seconds, task.attempt
                )
                pending.append(task)

        completed = self._assemble(todo, results, failures)
        return SuiteRunReport(
            completed=tuple(completed),
            resumed=tuple(resumed),
            failed=tuple(failures),
            retries=retries,
            timeouts=timeouts,
            crashes=crashes,
            seconds=time.perf_counter() - t_start,
        )

    # ------------------------------------------------------------------
    def _run_wave(
        self, wave: list[WaveTask]
    ) -> tuple[dict[Any, dict[str, Any]], list[WaveFailure]]:
        """One pool generation over at most ``workers`` tasks.

        Delegates to :func:`repro.experiments.pool.run_wave`; worker
        traces are merged into the parent collector as each task lands.
        """
        return run_wave(
            _execute_task,
            wave,
            workers=self.options.workers,
            timeout=self.options.timeout,
            collector=self.collector,
            span_name="experiments.wave",
            on_result=self._merge,
        )

    def _merge(self, task: WaveTask, payload: Mapping[str, Any]) -> None:
        """Fold one worker's trace and latency into the parent collector."""
        circuit_name, engine = task.key
        self.collector.count("experiments.tasks-completed")
        self.collector.gauge(
            f"experiments.task-seconds.{circuit_name}.{engine}",
            float(payload["seconds"]),
        )
        self.collector.merge_counters(payload.get("counters", {}))
        self.collector.merge_gauges(payload.get("gauges", {}))

    # ------------------------------------------------------------------
    def _assemble(
        self,
        todo: list[str],
        results: dict[tuple[str, str], dict[str, Any]],
        failures: list[TaskFailure],
    ) -> list[str]:
        """Combine per-engine results into cached circuit experiments."""
        completed: list[str] = []
        failed_circuits = {f.circuit for f in failures}
        for name in todo:
            if name in failed_circuits:
                reasons = "; ".join(
                    f"{f.engine}: {f.kind} after {f.attempts} attempt(s)"
                    + (f" ({f.message})" if f.message else "")
                    for f in failures
                    if f.circuit == name
                )
                self.suite.failures[name] = reasons
                continue
            flow_doc = results[(name, "flow")]
            ilp_doc = results[(name, "ilp")]
            self.suite.install_results(
                name,
                FlowResult.from_dict(flow_doc["result"]),
                FlowResult.from_dict(ilp_doc["result"]),
            )
            completed.append(name)
        return completed


def run_parallel_suite(
    suite: ExperimentSuite,
    options: ParallelOptions | None = None,
    collector: Collector = NULL_COLLECTOR,
) -> SuiteRunReport:
    """Run ``suite`` over worker processes (see :class:`ParallelSuiteRunner`)."""
    return ParallelSuiteRunner(suite, options, collector).run()


def parallel_options_from_flags(
    parallel: int,
    timeout: float | None = None,
    max_retries: int = 2,
    backoff: float = 0.5,
) -> ParallelOptions:
    """CLI/facade helper: flags -> :class:`ParallelOptions`.

    ``timeout`` of 0 (the CLI default) means "no deadline".
    """
    return ParallelOptions(
        workers=max(1, parallel),
        timeout=None if not timeout else float(timeout),
        max_retries=max_retries,
        backoff_seconds=backoff,
    )


__all__ = [
    "ENGINES",
    "FAULT_ENV",
    "ParallelOptions",
    "ParallelSuiteRunner",
    "SuiteRunReport",
    "TaskFailure",
    "parallel_options_from_flags",
    "run_parallel_suite",
]
