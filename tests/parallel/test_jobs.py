"""Jobs-spec parsing and resolution (``--jobs`` / ``REPRO_JOBS``)."""

import os

import pytest

from repro.parallel import JOBS_ENV_VAR, jobs_from_env, parse_jobs, resolve_jobs


class TestParseJobs:
    def test_auto(self):
        assert parse_jobs("auto") == "auto"
        assert parse_jobs(" AUTO ") == "auto"

    def test_positive_int(self):
        assert parse_jobs("1") == 1
        assert parse_jobs("16") == 16

    @pytest.mark.parametrize("bad", ["0", "-2", "two", "", "1.5"])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_jobs(bad)


class TestResolveJobs:
    def test_default_is_serial(self):
        assert resolve_jobs(env={}) == 1

    def test_explicit_int(self):
        assert resolve_jobs(3, env={}) == 3

    def test_auto_is_cpu_count(self):
        assert resolve_jobs("auto", env={}) == max(1, os.cpu_count() or 1)

    def test_env_overrides_options(self):
        assert resolve_jobs(1, env={JOBS_ENV_VAR: "5"}) == 5
        assert resolve_jobs(8, env={JOBS_ENV_VAR: "2"}) == 2

    def test_env_auto(self):
        assert resolve_jobs(1, env={JOBS_ENV_VAR: "auto"}) == max(
            1, os.cpu_count() or 1
        )

    def test_blank_env_is_ignored(self):
        assert resolve_jobs(4, env={JOBS_ENV_VAR: "  "}) == 4

    def test_bad_env_raises(self):
        with pytest.raises(ValueError):
            resolve_jobs(1, env={JOBS_ENV_VAR: "zero"})

    @pytest.mark.parametrize("bad", [0, -1, True])
    def test_bad_jobs_value_raises(self, bad):
        with pytest.raises(ValueError):
            resolve_jobs(bad, env={})

    def test_jobs_from_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert jobs_from_env() == 3
        monkeypatch.delenv(JOBS_ENV_VAR)
        assert jobs_from_env() == 1
