"""Save and load rotary-clocked design results as JSON.

A :class:`~repro.core.flow.FlowResult` is a live object graph; this module
persists the *design decisions* it encodes — placement, ring array
geometry, flip-flop assignment with tapping solutions, and the skew
schedule — in a stable, versioned JSON format, so downstream tools (or a
later session) can consume a flow run without re-running it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..core.flow import FlowResult
from ..errors import ReproError
from ..geometry import BBox, Point
from ..rotary import RingArray

FORMAT_VERSION = 1


@dataclass(frozen=True, slots=True)
class SavedDesign:
    """The persisted view of a flow result."""

    circuit_name: str
    period: float
    die: BBox
    ring_grid_side: int
    positions: dict[str, Point]
    ring_of: dict[str, int]
    #: Per flip-flop: (segment_index, x, wirelength, periods_borrowed, snaked)
    tappings: dict[str, dict[str, Any]]
    schedule: dict[str, float]
    metrics: dict[str, float]

    def ring_array(self) -> RingArray:
        """Rebuild the ring array from the stored geometry."""
        return RingArray(self.die, self.ring_grid_side, self.period)


def save_design(result: FlowResult, path: str | Path) -> None:
    """Serialize ``result`` to ``path`` as JSON."""
    array = result.array
    side = int(round(array.num_rings**0.5))
    doc = {
        "format_version": FORMAT_VERSION,
        "circuit": result.circuit_name,
        "period_ps": array.period,
        "die": [
            array.region.xlo,
            array.region.ylo,
            array.region.xhi,
            array.region.yhi,
        ],
        "ring_grid_side": side,
        "positions": {
            name: [p.x, p.y] for name, p in sorted(result.positions.items())
        },
        "assignment": {
            ff: {
                "ring": ring_id,
                "segment": result.assignment.solutions[ff].segment_index,
                "x": result.assignment.solutions[ff].x,
                "wirelength": result.assignment.solutions[ff].wirelength,
                "periods_borrowed": result.assignment.solutions[ff].periods_borrowed,
                "snaked": result.assignment.solutions[ff].snaked,
            }
            for ff, ring_id in sorted(result.assignment.ring_of.items())
        },
        "schedule": {
            ff: t for ff, t in sorted(result.schedule.targets.items())
        },
        "metrics": {
            "tapping_wirelength_um": result.final.tapping_wirelength,
            "signal_wirelength_um": result.final.signal_wirelength,
            "average_flipflop_distance_um": result.final.average_flipflop_distance,
            "max_load_capacitance_ff": result.final.max_load_capacitance,
            "slack_available_ps": result.slack_available,
            "slack_guaranteed_ps": result.slack_guaranteed,
        },
    }
    Path(path).write_text(json.dumps(doc, indent=1, sort_keys=True))


def load_design(path: str | Path) -> SavedDesign:
    """Load a design saved by :func:`save_design`."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read design file {path}: {exc}") from exc
    version = doc.get("format_version")
    if version != FORMAT_VERSION:
        raise ReproError(
            f"unsupported design format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    required = ("circuit", "period_ps", "die", "ring_grid_side",
                "positions", "assignment", "schedule", "metrics")
    missing = [key for key in required if key not in doc]
    if missing:
        raise ReproError(f"design file {path} is missing keys: {missing}")
    die = BBox(*doc["die"])
    positions = {
        name: Point(float(x), float(y))
        for name, (x, y) in doc["positions"].items()
    }
    ring_of = {ff: int(rec["ring"]) for ff, rec in doc["assignment"].items()}
    tappings = {
        ff: {
            "segment": int(rec["segment"]),
            "x": float(rec["x"]),
            "wirelength": float(rec["wirelength"]),
            "periods_borrowed": int(rec["periods_borrowed"]),
            "snaked": bool(rec["snaked"]),
        }
        for ff, rec in doc["assignment"].items()
    }
    return SavedDesign(
        circuit_name=doc["circuit"],
        period=float(doc["period_ps"]),
        die=die,
        ring_grid_side=int(doc["ring_grid_side"]),
        positions=positions,
        ring_of=ring_of,
        tappings=tappings,
        schedule={ff: float(t) for ff, t in doc["schedule"].items()},
        metrics={k: float(v) for k, v in doc["metrics"].items()},
    )
