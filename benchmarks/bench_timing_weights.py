"""Slack/wirelength trade-off gates for timing-driven net weighting.

Runs the integrated flow on bundled circuits with
``net_weighting="none"`` vs ``"critical"`` and gates the trade the
feature is supposed to buy:

* on s9234 the critical run must converge in *fewer* Fig. 3 iterations
  or close with a better worst permissible-range slack;
* the signal-wirelength regression the up-weighted nets cause must stay
  bounded (<= 2%);
* the default path stays bit-identical: a ``critical_weight=1.0`` run
  reproduces the unweighted positions exactly.

Every measurement lands in ``BENCH_timing_weights.json`` (archived by
the perf-smoke CI job next to the other BENCH artifacts).
"""

import json
import time
from pathlib import Path

import pytest

from repro.core import FlowOptions, IntegratedFlow
from repro.netlist import PROFILES, generate_named

#: s9234 carries the gate (its iteration count demonstrably drops);
#: s5378 is recorded for the trend without gating convergence.
GATED = "s9234"
RECORDED = ("s5378", "s9234")
MAX_SIGNAL_WL_REGRESSION = 0.02

RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def timing_weights_artifact():
    yield
    Path("BENCH_timing_weights.json").write_text(
        json.dumps(RESULTS, indent=2) + "\n"
    )


def run_flow(name: str, **options):
    opts = FlowOptions(
        ring_grid_side=PROFILES[name].ring_grid_side, **options
    )
    t0 = time.perf_counter()
    result = IntegratedFlow(generate_named(name), options=opts).run()
    return time.perf_counter() - t0, result


def record(name: str, baseline, critical, base_s: float, crit_s: float) -> dict:
    entry = {
        "iterations_none": len(baseline.history),
        "iterations_critical": len(critical.history),
        "worst_slack_none_ps": baseline.history[-1].worst_slack,
        "worst_slack_critical_ps": critical.history[-1].worst_slack,
        "signal_wl_none": baseline.final.signal_wirelength,
        "signal_wl_critical": critical.final.signal_wirelength,
        "signal_wl_regression": (
            critical.final.signal_wirelength / baseline.final.signal_wirelength
            - 1.0
        ),
        "weighted_nets_per_iteration": [
            rec.weighted_nets for rec in critical.history
        ],
        "seconds_none": base_s,
        "seconds_critical": crit_s,
    }
    RESULTS[name] = entry
    return entry


@pytest.mark.parametrize("name", RECORDED)
def test_slack_wirelength_tradeoff(name):
    base_s, baseline = run_flow(name, net_weighting="none")
    crit_s, critical = run_flow(name, net_weighting="critical")
    entry = record(name, baseline, critical, base_s, crit_s)

    # The up-weighted nets may cost signal wirelength, but only a little.
    assert entry["signal_wl_regression"] <= MAX_SIGNAL_WL_REGRESSION, (
        f"{name}: critical weighting regressed signal WL by "
        f"{entry['signal_wl_regression']:.2%}"
    )
    # Weighting must actually have engaged past the base iteration.
    assert any(n > 0 for n in entry["weighted_nets_per_iteration"][1:])

    if name == GATED:
        improved_convergence = (
            entry["iterations_critical"] < entry["iterations_none"]
        )
        improved_slack = (
            entry["worst_slack_critical_ps"] > entry["worst_slack_none_ps"]
        )
        assert improved_convergence or improved_slack, (
            f"{name}: critical weighting bought neither fewer iterations "
            f"({entry['iterations_critical']} vs {entry['iterations_none']}) "
            f"nor better worst slack "
            f"({entry['worst_slack_critical_ps']:.1f} vs "
            f"{entry['worst_slack_none_ps']:.1f} ps)"
        )


def test_default_path_bit_identical():
    """critical_weight=1.0 must reproduce the unweighted flow exactly."""
    name = GATED
    _, baseline = run_flow(name, net_weighting="none")
    _, unit = run_flow(name, net_weighting="critical", critical_weight=1.0)
    identical = baseline.positions == unit.positions
    RESULTS.setdefault(name, {})["unit_weight_bit_identical"] = identical
    assert identical
    assert len(baseline.history) == len(unit.history)
