"""A small linear-programming model facade.

The paper solves its LPs with Soplex and its ILPs with GLPK.  This module
provides the equivalent role: formulations elsewhere in the library build a
:class:`LinearProgram` and stay solver-independent.  Two backends are
available:

* ``"highs"`` — scipy's HiGHS ``linprog`` (and ``milp`` when integer
  variables are present); the default.
* ``"simplex"`` — the from-scratch two-phase dense simplex in
  :mod:`repro.opt.simplex`, used for cross-checking on small models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Mapping

import numpy as np

from ..errors import InfeasibleError, OptimizationError, UnboundedError

Sense = Literal["<=", ">=", "=="]


@dataclass(slots=True)
class _Constraint:
    coeffs: dict[str, float]
    sense: Sense
    rhs: float
    name: str


@dataclass(slots=True)
class _ConstraintBlock:
    """A batch of same-sense constraints in COO triplet form.

    ``rows`` are block-local (0..n_rows-1); ``cols`` index the variable
    declaration order.  Rows with no entries are legal (a vacuous
    ``0 <= rhs`` row, e.g. a self-loop timing pair whose coefficients
    cancelled) and keep their right-hand side.
    """

    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    sense: Sense
    rhs: np.ndarray
    n_rows: int


@dataclass(frozen=True, slots=True)
class LPSolution:
    """Result of an LP/MILP solve."""

    status: str  # "optimal"
    objective: float
    values: dict[str, float]

    def __getitem__(self, var: str) -> float:
        return self.values[var]


class LinearProgram:
    """An LP/MILP in natural (named-variable) form.

    Example::

        lp = LinearProgram("toy")
        lp.add_var("x", lb=0), lp.add_var("y", lb=0)
        lp.add_constraint({"x": 1, "y": 2}, "<=", 14)
        lp.set_objective({"x": -1, "y": -1})   # minimize -x - y
        sol = lp.solve()
    """

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self._vars: dict[str, tuple[float, float, bool]] = {}
        self._order: list[str] = []
        self._constraints: list[_Constraint | _ConstraintBlock] = []
        self._objective: dict[str, float] = {}

    # ------------------------------------------------------------------
    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float | None = None,
        integer: bool = False,
    ) -> str:
        """Declare a variable with bounds ``[lb, ub]`` (``ub=None`` = +inf)."""
        if name in self._vars:
            raise OptimizationError(f"duplicate variable {name!r} in LP {self.name}")
        upper = math.inf if ub is None else ub
        if upper < lb:
            raise OptimizationError(f"variable {name!r}: ub {upper} < lb {lb}")
        self._vars[name] = (lb, upper, integer)
        self._order.append(name)
        return name

    def add_constraint(
        self,
        coeffs: Mapping[str, float],
        sense: Sense,
        rhs: float,
        name: str | None = None,
    ) -> None:
        """Add ``sum coeffs[v]*v  <sense>  rhs``."""
        if sense not in ("<=", ">=", "=="):
            raise OptimizationError(f"bad constraint sense {sense!r}")
        unknown = [v for v in coeffs if v not in self._vars]
        if unknown:
            raise OptimizationError(f"constraint references unknown variables {unknown}")
        self._constraints.append(
            _Constraint(dict(coeffs), sense, rhs, name or f"c{len(self._constraints)}")
        )

    def add_constraint_block(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        sense: Sense,
        rhs: np.ndarray,
    ) -> None:
        """Add ``len(rhs)`` constraints at once from COO triplets.

        Equivalent to calling :meth:`add_constraint` row by row with the
        same coefficients, but without per-row Python objects — the fast
        assembly path for the 10^5-row skew LPs on scale profiles.
        ``rows`` are block-local row indices, ``cols`` are variable
        indices in declaration order (see :meth:`var_indices`), and every
        row shares ``sense``.  Duplicate ``(row, col)`` entries are
        summed by the CSR lowering; emit each coefficient once (and skip
        zeros) to stay byte-compatible with the scalar path.
        """
        if sense not in ("<=", ">=", "=="):
            raise OptimizationError(f"bad constraint sense {sense!r}")
        row_arr = np.asarray(rows, dtype=np.intp)
        col_arr = np.asarray(cols, dtype=np.intp)
        val_arr = np.asarray(values, dtype=float)
        rhs_arr = np.asarray(rhs, dtype=float)
        if not (row_arr.shape == col_arr.shape == val_arr.shape) or row_arr.ndim != 1:
            raise OptimizationError(
                f"constraint block in LP {self.name}: triplet arrays must be "
                "1-D and share a shape"
            )
        n_rows = int(rhs_arr.shape[0])
        if row_arr.size and (row_arr.min() < 0 or row_arr.max() >= n_rows):
            raise OptimizationError(
                f"constraint block in LP {self.name}: row index out of range"
            )
        if col_arr.size and (col_arr.min() < 0 or col_arr.max() >= len(self._order)):
            raise OptimizationError(
                f"constraint block in LP {self.name} references unknown variables"
            )
        self._constraints.append(
            _ConstraintBlock(row_arr, col_arr, val_arr, sense, rhs_arr, n_rows)
        )

    def var_indices(self, names: list[str]) -> np.ndarray:
        """Indices of ``names`` in declaration order, for block assembly."""
        idx = {v: i for i, v in enumerate(self._order)}
        try:
            return np.array([idx[n] for n in names], dtype=np.intp)
        except KeyError as exc:
            raise OptimizationError(
                f"unknown variable {exc.args[0]!r} in LP {self.name}"
            ) from None

    def set_objective(self, coeffs: Mapping[str, float]) -> None:
        """Set the objective (always minimized; negate to maximize)."""
        unknown = [v for v in coeffs if v not in self._vars]
        if unknown:
            raise OptimizationError(f"objective references unknown variables {unknown}")
        self._objective = dict(coeffs)

    @property
    def num_vars(self) -> int:
        return len(self._order)

    @property
    def num_constraints(self) -> int:
        return sum(
            c.n_rows if isinstance(c, _ConstraintBlock) else 1
            for c in self._constraints
        )

    @property
    def has_integers(self) -> bool:
        return any(is_int for (_, _, is_int) in self._vars.values())

    # ------------------------------------------------------------------
    def to_arrays(self) -> dict[str, object]:
        """Lower to the matrix form consumed by the backends.

        Returns ``c, A_ub, b_ub, A_eq, b_eq, bounds, integrality, order``.
        Constraint matrices are scipy CSR (skew and assignment models have
        tens of thousands of rows but only a few nonzeros per row).
        """
        import scipy.sparse as sp

        idx = {v: i for i, v in enumerate(self._order)}
        n = len(self._order)
        c = np.zeros(n)
        for v, coef in self._objective.items():
            c[idx[v]] = coef

        def build(
            rows: list[_Constraint | _ConstraintBlock], negate: bool
        ) -> tuple[sp.csr_matrix, np.ndarray]:
            data: list[float] = []
            ri: list[int] = []
            ci: list[int] = []
            chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
            b: list[float] = []
            offset = 0
            for con in rows:
                sign = -1.0 if (negate and con.sense == ">=") else 1.0
                if isinstance(con, _ConstraintBlock):
                    chunks.append(
                        (
                            con.rows + offset,
                            con.cols,
                            con.values if sign == 1.0 else -con.values,
                        )
                    )
                    b.extend((con.rhs if sign == 1.0 else -con.rhs).tolist())
                    offset += con.n_rows
                else:
                    for v, coef in con.coeffs.items():
                        ri.append(offset)
                        ci.append(idx[v])
                        data.append(sign * coef)
                    b.append(con.rhs if sign == 1.0 else -con.rhs)
                    offset += 1
            all_r = np.concatenate(
                [np.asarray(ri, dtype=np.intp), *(ch[0] for ch in chunks)]
            )
            all_c = np.concatenate(
                [np.asarray(ci, dtype=np.intp), *(ch[1] for ch in chunks)]
            )
            all_v = np.concatenate(
                [np.asarray(data, dtype=float), *(ch[2] for ch in chunks)]
            )
            matrix = sp.csr_matrix((all_v, (all_r, all_c)), shape=(offset, n))
            return matrix, np.array(b)

        ub_cons = [c_ for c_ in self._constraints if c_.sense in ("<=", ">=")]
        eq_cons = [c_ for c_ in self._constraints if c_.sense == "=="]
        a_ub, b_ub = build(ub_cons, negate=True) if ub_cons else (None, None)
        a_eq, b_eq = build(eq_cons, negate=False) if eq_cons else (None, None)
        bounds = [(self._vars[v][0], self._vars[v][1]) for v in self._order]
        integrality = np.array(
            [1 if self._vars[v][2] else 0 for v in self._order], dtype=int
        )
        return {
            "c": c,
            "A_ub": a_ub,
            "b_ub": b_ub,
            "A_eq": a_eq,
            "b_eq": b_eq,
            "bounds": bounds,
            "integrality": integrality,
            "order": list(self._order),
        }

    # ------------------------------------------------------------------
    def solve(
        self,
        backend: Literal["highs", "simplex"] = "highs",
        relax_integrality: bool = False,
        time_limit: float | None = None,
    ) -> LPSolution:
        """Solve and return an :class:`LPSolution`.

        Raises :class:`InfeasibleError` / :class:`UnboundedError` on those
        outcomes; any other solver failure raises
        :class:`OptimizationError`.
        """
        arrays = self.to_arrays()
        if backend == "simplex":
            from .simplex import solve_simplex

            if self.has_integers and not relax_integrality:
                raise OptimizationError("simplex backend cannot solve integer models")
            a_ub = arrays["A_ub"].toarray() if arrays["A_ub"] is not None else None
            a_eq = arrays["A_eq"].toarray() if arrays["A_eq"] is not None else None
            x, obj = solve_simplex(
                arrays["c"],
                a_ub,
                arrays["b_ub"],
                a_eq,
                arrays["b_eq"],
                arrays["bounds"],
            )
            values = dict(zip(arrays["order"], (float(v) for v in x)))
            return LPSolution("optimal", float(obj), values)
        if backend != "highs":
            raise OptimizationError(f"unknown LP backend {backend!r}")
        if self.has_integers and not relax_integrality:
            return self._solve_milp(arrays, time_limit)
        return self._solve_linprog(arrays)

    def _solve_linprog(self, arrays: dict[str, object]) -> LPSolution:
        from scipy.optimize import linprog

        res = linprog(
            arrays["c"],
            A_ub=arrays["A_ub"],
            b_ub=arrays["b_ub"],
            A_eq=arrays["A_eq"],
            b_eq=arrays["b_eq"],
            bounds=arrays["bounds"],
            method="highs",
        )
        if res.status == 2:
            raise InfeasibleError(f"LP {self.name} is infeasible")
        if res.status == 3:
            raise UnboundedError(f"LP {self.name} is unbounded")
        if not res.success:
            raise OptimizationError(f"LP {self.name} failed: {res.message}")
        values = dict(zip(arrays["order"], (float(v) for v in res.x)))
        return LPSolution("optimal", float(res.fun), values)

    def _solve_milp(
        self, arrays: dict[str, object], time_limit: float | None
    ) -> LPSolution:
        from scipy.optimize import LinearConstraint, milp
        from scipy.optimize import Bounds as ScipyBounds

        constraints = []
        if arrays["A_ub"] is not None:
            constraints.append(
                LinearConstraint(arrays["A_ub"], -np.inf, arrays["b_ub"])
            )
        if arrays["A_eq"] is not None:
            constraints.append(
                LinearConstraint(arrays["A_eq"], arrays["b_eq"], arrays["b_eq"])
            )
        lbs = np.array([b[0] for b in arrays["bounds"]])
        ubs = np.array([b[1] for b in arrays["bounds"]])
        options = {}
        if time_limit is not None:
            options["time_limit"] = time_limit
        res = milp(
            c=arrays["c"],
            constraints=constraints,
            bounds=ScipyBounds(lbs, ubs),
            integrality=arrays["integrality"],
            options=options,
        )
        if res.status == 2:
            raise InfeasibleError(f"MILP {self.name} is infeasible")
        if res.x is None:
            raise OptimizationError(f"MILP {self.name} failed: {res.message}")
        values = dict(zip(arrays["order"], (float(v) for v in res.x)))
        return LPSolution("optimal" if res.status == 0 else "feasible",
                          float(res.fun), values)
