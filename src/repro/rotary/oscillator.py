"""Electrical model of a rotary ring: oscillation frequency and dummy load.

Equation (2) of the paper: ``f_osc = 1 / (2 sqrt(L_total * C_total))``
where ``C_total`` is the ring's own capacitance plus the *load capacitance*
(stub wires + flip-flop input caps) hung on it.  Minimizing the maximum
load capacitance over rings maximizes the achievable frequency — the
objective of the Section VI ILP.

The module also models the dummy capacitors the paper inserts "at places
where no flip-flops exist" to keep the capacitance per unit length uniform
(non-uniform loading distorts the wave).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..constants import Technology
from .ring import RotaryRing


@dataclass(frozen=True, slots=True)
class RingElectrical:
    """Electrical summary of one loaded ring."""

    ring_id: int
    inductance_ph: float
    ring_cap_ff: float
    load_cap_ff: float
    dummy_cap_ff: float

    @property
    def total_cap_ff(self) -> float:
        return self.ring_cap_ff + self.load_cap_ff + self.dummy_cap_ff

    @property
    def frequency_ghz(self) -> float:
        """Oscillation frequency from eq. (2), in GHz."""
        seconds = 2.0 * (
            (self.inductance_ph * 1e-12) * (self.total_cap_ff * 1e-15)
        ) ** 0.5
        return 1e-9 / seconds


def ring_inductance(ring: RotaryRing, tech: Technology) -> float:
    """Loop inductance (pH) of the differential pair."""
    return tech.unit_inductance * ring.perimeter


def ring_self_capacitance(ring: RotaryRing, tech: Technology) -> float:
    """Capacitance (fF) of the ring conductors themselves."""
    return tech.unit_capacitance * ring.perimeter


def stub_load_capacitance(stub_length: float, tech: Technology) -> float:
    """Load (fF) a tapped flip-flop presents to the ring: stub wire plus
    the flip-flop clock-pin input capacitance."""
    if stub_length < 0:
        raise ValueError("stub length cannot be negative")
    return tech.wire_cap(stub_length) + tech.flipflop_input_cap


def dummy_capacitance(
    ring: RotaryRing,
    tap_positions: Sequence[float],
    tap_caps: Sequence[float],
    num_sectors: int = 8,
) -> float:
    """Dummy capacitance (fF) needed to even out the loading of a ring.

    The loop is divided into ``num_sectors`` equal arcs; each sector's
    attached load is summed and every sector is topped up with dummy
    capacitors to the maximum sector load.  Returns the total dummy cap.
    """
    if len(tap_positions) != len(tap_caps):
        raise ValueError("tap_positions and tap_caps must have equal length")
    if num_sectors <= 0:
        raise ValueError("num_sectors must be positive")
    sector_len = ring.perimeter / num_sectors
    loads = [0.0] * num_sectors
    for s, cap in zip(tap_positions, tap_caps):
        sector = int((s % ring.perimeter) / sector_len)
        sector = min(sector, num_sectors - 1)
        loads[sector] += cap
    peak = max(loads) if loads else 0.0
    return sum(peak - load for load in loads)


def required_total_capacitance(ring: RotaryRing, target_period: float, tech: Technology) -> float:
    """Total capacitance (fF) that makes the ring oscillate at the target.

    Inverts eq. (2): ``C_total = T^2 / (4 L_total)``.  Real rotary designs
    hit their frequency by adding dummy capacitors; the gap between this
    value and the attached load is the dummy budget.
    """
    if target_period <= 0:
        raise ValueError("target period must be positive")
    L = ring_inductance(ring, tech) * 1e-12  # H
    seconds = target_period * 1e-12
    c_farad = seconds * seconds / (4.0 * L)
    return c_farad * 1e15


def dummy_budget(
    ring: RotaryRing,
    load_cap_ff: float,
    target_period: float,
    tech: Technology,
) -> float:
    """Dummy capacitance (fF) still needed at the given attached load.

    Negative means the ring is over-loaded for the target frequency —
    precisely what the Section VI min-max formulation guards against.
    """
    total = required_total_capacitance(ring, target_period, tech)
    return total - ring_self_capacitance(ring, tech) - load_cap_ff


def ring_electrical(
    ring: RotaryRing,
    stub_lengths: Sequence[float],
    tech: Technology,
    tap_positions: Sequence[float] | None = None,
) -> RingElectrical:
    """Full electrical summary of a ring given its assigned flip-flops.

    ``stub_lengths`` are the tapping wirelengths of the flip-flops
    assigned to this ring.  ``tap_positions`` (arc lengths) enable the
    dummy-capacitance estimate; when omitted taps are assumed uniform and
    no dummy cap is needed.
    """
    caps = [stub_load_capacitance(l, tech) for l in stub_lengths]
    dummy = 0.0
    if tap_positions is not None:
        dummy = dummy_capacitance(ring, tap_positions, caps)
    return RingElectrical(
        ring_id=ring.ring_id,
        inductance_ph=ring_inductance(ring, tech),
        ring_cap_ff=ring_self_capacitance(ring, tech),
        load_cap_ff=sum(caps),
        dummy_cap_ff=dummy,
    )
