"""Tests for the §II zero-skew motivation experiment."""

import pytest

from repro.experiments import ExperimentSuite, zero_skew_comparison


@pytest.fixture(scope="module")
def suite() -> ExperimentSuite:
    return ExperimentSuite(circuits=["tinyM"])


class TestZeroSkewComparison:
    def test_intentional_skew_wins(self, suite):
        cmp = zero_skew_comparison(suite, "tinyM")
        assert cmp.scheduled_tapping_wl < cmp.zero_skew_tapping_wl
        assert cmp.penalty_factor > 1.0

    def test_fields_consistent(self, suite):
        cmp = zero_skew_comparison(suite, "tinyM")
        assert cmp.circuit == "tinyM"
        assert cmp.zero_skew_snaked >= 0
        assert cmp.scheduled_snaked >= 0
        assert cmp.penalty_factor == pytest.approx(
            cmp.zero_skew_tapping_wl / cmp.scheduled_tapping_wl
        )
