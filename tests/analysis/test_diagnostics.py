"""Tests for the diagnostic record types and the report aggregate."""

import pytest

from repro.analysis import CheckReport, Diagnostic, Location, Severity
from repro.errors import CheckError


def _diag(code="RCK101", severity=Severity.ERROR, kind="cell", name="g1"):
    return Diagnostic(
        code=code,
        rule="some-rule",
        severity=severity,
        message="something is wrong",
        location=Location(kind=kind, name=name),
    )


class TestSeverity:
    def test_order_supports_thresholds(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("error", Severity.ERROR),
            ("WARNING", Severity.WARNING),
            ("Info", Severity.INFO),
            ("note", Severity.INFO),  # SARIF spelling
        ],
    )
    def test_parse(self, text, expected):
        assert Severity.parse(text) is expected

    def test_parse_unknown_raises(self):
        with pytest.raises(CheckError, match="unknown severity"):
            Severity.parse("fatal")

    def test_sarif_levels(self):
        assert Severity.ERROR.sarif_level == "error"
        assert Severity.WARNING.sarif_level == "warning"
        assert Severity.INFO.sarif_level == "note"


class TestDiagnostic:
    def test_format_contains_code_location_message(self):
        text = _diag().format()
        assert "RCK101" in text
        assert "cell g1" in text
        assert "something is wrong" in text

    def test_format_includes_hint_when_present(self):
        d = Diagnostic(
            code="RCK101",
            rule="r",
            severity=Severity.ERROR,
            message="m",
            location=Location("cell", "g1"),
            hint="fix it",
        )
        assert "(hint: fix it)" in d.format()
        assert "hint" not in _diag().format()

    def test_as_dict_roundtrips_fields(self):
        doc = _diag().as_dict()
        assert doc["code"] == "RCK101"
        assert doc["severity"] == "error"
        assert doc["location"] == {"kind": "cell", "name": "g1"}
        assert "hint" not in doc


class TestCheckReport:
    def _report(self):
        findings = (
            _diag("RCK101", Severity.ERROR),
            _diag("RCK101", Severity.ERROR, name="g2"),
            _diag("RCK103", Severity.WARNING),
            _diag("RCK999x", Severity.INFO),
        )
        return CheckReport(
            design="d", findings=findings, rules_run=("RCK101", "RCK103")
        )

    def test_counts(self):
        r = self._report()
        assert r.counts_by_code == {"RCK101": 2, "RCK103": 1, "RCK999x": 1}
        assert r.counts_by_severity == {"error": 2, "warning": 1, "info": 1}

    def test_threshold_filters(self):
        r = self._report()
        assert len(r.at_least(Severity.WARNING)) == 3
        assert len(r.errors) == 2
        assert r.has_errors

    def test_exit_code_contract(self):
        r = self._report()
        assert r.exit_code() == 1
        assert r.exit_code(Severity.INFO) == 1
        clean = CheckReport(design="d", findings=(), rules_run=("RCK101",))
        assert clean.exit_code() == 0
        assert not clean.has_errors

    def test_exit_code_respects_fail_on(self):
        warn_only = CheckReport(
            design="d",
            findings=(_diag("RCK103", Severity.WARNING),),
            rules_run=("RCK103",),
        )
        assert warn_only.exit_code(Severity.ERROR) == 0
        assert warn_only.exit_code(Severity.WARNING) == 1
