"""Cost-driven skew optimization (Section VII, stage 4 of the flow).

After flip-flops are assigned to rings, re-optimize the delay targets so
each target becomes reachable from the point ``c`` on its ring *closest*
to the flip-flop — the tapping cost is then (nearly) the shortest
flip-flop-to-ring distance.  For flip-flop ``i``:

* ``c``   = nearest loop point, ``l_i`` = distance to it,
* ``t_c`` = clock delay at ``c`` (the rings are phase-locked, so
  ``t_c = t_ref + t_ref,c``),
* ``t_{c,i}`` = stub Elmore delay over ``l_i``,
* the achievable delay is ``t_i = t_c + t_{c,i}``.

Two LP formulations, both subject to the timing constraints at a
prespecified slack ``M``:

* **min-max** — minimize ``Delta`` with
  ``t_c + 2 t_{c,i} - t̂_i <= Delta`` and ``t̂_i - t_c <= Delta``
  (equivalent to ``|t_i - t̂_i| + t_{c,i} <= Delta``);
* **weighted-sum** — minimize ``sum_i w_i delta_i`` with
  ``|t_i - t̂_i| <= delta_i`` and the natural weights ``w_i = l_i``
  (work hardest on flip-flops far from their rings).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Mapping

from ..constants import Technology
from ..errors import SkewOptimizationError
from ..geometry import Point
from ..obs import NULL_COLLECTOR, Collector
from ..opt.lp import LinearProgram
from ..rotary import RingArray, stub_delay
from ..timing import PathBounds
from .skew_traditional import SkewSchedule


@dataclass(frozen=True, slots=True)
class RingAttraction:
    """Per flip-flop: the nearest ring point and its achievable delay."""

    ff: str
    nearest_point: Point
    distance: float  # l_i (um)
    delay_at_point: float  # t_c (ps), phase-adjusted near the current target
    stub_delay: float  # t_{c,i} (ps)

    @property
    def achievable_delay(self) -> float:
        """t_i = t_c + t_{c,i}."""
        return self.delay_at_point + self.stub_delay


def ring_attractions(
    ring_of: Mapping[str, int],
    positions: Mapping[str, Point],
    current: Mapping[str, float],
    array: RingArray,
    tech: Technology,
) -> dict[str, RingAttraction]:
    """Compute ``(c, l_i, t_c, t_{c,i})`` for every assigned flip-flop.

    The ring offers two complementary phases at ``c`` and repeats every
    period; the candidate delay closest to the flip-flop's *current*
    target is chosen so the LP pulls the target the short way around.
    """
    period = array.period
    out: dict[str, RingAttraction] = {}
    for ff, ring_id in ring_of.items():
        ring = array[ring_id]
        p = positions[ff]
        point, dist = ring.nearest_point(p)
        t_stub = stub_delay(dist, tech)
        target = current[ff]
        best_tc = None
        best_err = None
        for tc in ring.delay_candidates_at(p):
            # Shift tc by whole periods to land nearest the current target.
            k = round((target - (tc + t_stub)) / period)
            tc_adj = tc + k * period
            err = abs(tc_adj + t_stub - target)
            if best_err is None or err < best_err:
                best_tc, best_err = tc_adj, err
        assert best_tc is not None
        out[ff] = RingAttraction(
            ff=ff,
            nearest_point=point,
            distance=dist,
            delay_at_point=best_tc,
            stub_delay=t_stub,
        )
    return out


def _add_timing_constraints(
    lp: LinearProgram,
    pairs: Mapping[tuple[str, str], PathBounds],
    period: float,
    tech: Technology,
    slack: float,
) -> None:
    from .skew_traditional import _skew_coeffs

    for (i, j), b in pairs.items():
        lp.add_constraint(
            _skew_coeffs(i, j, {}),
            "<=",
            period - b.d_max - tech.setup_time - slack,
        )
        lp.add_constraint(
            _skew_coeffs(j, i, {}),
            "<=",
            b.d_min - tech.hold_time - slack,
        )


def cost_driven_schedule(
    attractions: Mapping[str, RingAttraction],
    pairs: Mapping[tuple[str, str], PathBounds],
    flip_flops: list[str],
    period: float,
    tech: Technology,
    slack: float = 0.0,
    mode: Literal["minmax", "weighted"] = "weighted",
    collector: Collector = NULL_COLLECTOR,
) -> SkewSchedule:
    """Solve the cost-driven skew LP; returns the new schedule.

    ``slack`` is the prespecified guaranteed slack ``M`` (the paper keeps
    timing safe while trading the rest of the permissible range for
    tapping cost).
    """
    if not flip_flops:
        raise SkewOptimizationError("no flip-flops to schedule")
    if mode not in ("minmax", "weighted"):
        raise SkewOptimizationError(f"unknown cost-driven mode {mode!r}")

    with collector.span("skew.cost-driven", mode=mode):
        collector.count("skew.lp.solves")
        collector.count("skew.lp.timing-pairs", len(pairs))
        return _solve_cost_driven(
            attractions, pairs, flip_flops, period, tech, slack, mode
        )


def _solve_cost_driven(
    attractions: Mapping[str, RingAttraction],
    pairs: Mapping[tuple[str, str], PathBounds],
    flip_flops: list[str],
    period: float,
    tech: Technology,
    slack: float,
    mode: Literal["minmax", "weighted"],
) -> SkewSchedule:
    lp = LinearProgram(f"cost_driven_skew_{mode}")
    for ff in flip_flops:
        lp.add_var(f"t_{ff}", lb=float("-inf"))
    _add_timing_constraints(lp, pairs, period, tech, slack)

    if mode == "minmax":
        lp.add_var("delta", lb=0.0)
        for ff in flip_flops:
            att = attractions.get(ff)
            if att is None:
                continue
            t_c = att.delay_at_point
            # t_c + 2 t_{c,i} - t̂_i <= Delta ; t̂_i - t_c <= Delta
            lp.add_constraint(
                {f"t_{ff}": -1.0, "delta": -1.0},
                "<=",
                -(t_c + 2.0 * att.stub_delay),
            )
            lp.add_constraint({f"t_{ff}": 1.0, "delta": -1.0}, "<=", t_c)
        lp.set_objective({"delta": 1.0})
    else:
        objective: dict[str, float] = {}
        for ff in flip_flops:
            att = attractions.get(ff)
            if att is None:
                continue
            lp.add_var(f"d_{ff}", lb=0.0)
            t_i = att.achievable_delay
            # |t̂_i - t_i| <= delta_i
            lp.add_constraint({f"t_{ff}": 1.0, f"d_{ff}": -1.0}, "<=", t_i)
            lp.add_constraint({f"t_{ff}": -1.0, f"d_{ff}": -1.0}, "<=", -t_i)
            # Natural weights: w_i = l_i (+ epsilon so near-ring flip-flops
            # are not entirely ignored).
            objective[f"d_{ff}"] = att.distance + 1e-3
        if not objective:
            raise SkewOptimizationError("no ring attractions provided")
        lp.set_objective(objective)

    sol = lp.solve()
    targets = {ff: sol.values[f"t_{ff}"] for ff in flip_flops}
    return SkewSchedule(targets=targets, slack=slack)
