"""Tests for exact DME embedding with Manhattan-arc merging segments."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocktree import (
    Rect,
    build_topology,
    embed_zero_skew_dme,
    path_length_stats,
    synthesize_clock_tree,
    synthesize_clock_tree_dme,
)
from repro.constants import DEFAULT_TECHNOLOGY
from repro.errors import ClockTreeError
from repro.geometry import Point

TECH = DEFAULT_TECHNOLOGY


class TestRect:
    def test_point_rect_degenerate(self):
        r = Rect.from_point(Point(3.0, 4.0))
        assert r.ulo == r.uhi == 7.0
        assert r.vlo == r.vhi == -1.0

    def test_chebyshev_is_manhattan(self):
        a = Rect.from_point(Point(0.0, 0.0))
        b = Rect.from_point(Point(3.0, 4.0))
        assert a.distance(b) == pytest.approx(7.0)

    def test_expand_and_intersect(self):
        a = Rect.from_point(Point(0.0, 0.0)).expanded(5.0)
        b = Rect.from_point(Point(6.0, 0.0)).expanded(1.0)
        overlap = a.intersect(b)
        assert overlap is not None
        # Touching exactly along u = 5 (rotated): a Manhattan arc.
        assert overlap.ulo == pytest.approx(overlap.uhi)

    def test_disjoint_intersection_none(self):
        a = Rect.from_point(Point(0.0, 0.0)).expanded(1.0)
        b = Rect.from_point(Point(10.0, 0.0)).expanded(1.0)
        assert a.intersect(b) is None

    def test_negative_radius_rejected(self):
        with pytest.raises(ClockTreeError):
            Rect.from_point(Point(0, 0)).expanded(-1.0)

    def test_nearest_clamps(self):
        r = Rect(0.0, 2.0, -1.0, 1.0)
        assert r.nearest(5.0, 0.0) == (2.0, 0.0)
        assert r.nearest(1.0, -9.0) == (1.0, -1.0)


class TestDmeEmbedding:
    def _recomputed_sink_delays(self, tree):
        delays = {}

        def subtree_cap(node):
            if not node.children:
                return node.subtree_cap
            return sum(
                subtree_cap(ch) + TECH.wire_cap(ch.edge_length)
                for ch in node.children
            )

        def walk(node, acc):
            for ch in node.children:
                r = TECH.wire_res(ch.edge_length)
                c_down = subtree_cap(ch) + 0.5 * TECH.wire_cap(ch.edge_length)
                d = acc + r * c_down * 1e-3
                if ch.children:
                    walk(ch, d)
                else:
                    delays[ch.name] = d

        walk(tree.root, 0.0)
        return delays

    def test_zero_skew_exact(self):
        rng = random.Random(11)
        sinks = {
            f"s{i}": Point(rng.uniform(0, 600), rng.uniform(0, 600))
            for i in range(20)
        }
        tree = synthesize_clock_tree_dme(sinks, TECH)
        for delay in self._recomputed_sink_delays(tree).values():
            assert delay == pytest.approx(tree.source_delay, rel=1e-6, abs=1e-6)

    def test_never_worse_than_point_merging(self):
        rng = random.Random(13)
        for n in (2, 5, 16, 64):
            sinks = {
                f"s{i}": Point(rng.uniform(0, 700), rng.uniform(0, 700))
                for i in range(n)
            }
            pm = synthesize_clock_tree(sinks, TECH)
            dme = synthesize_clock_tree_dme(sinks, TECH)
            assert dme.total_wirelength <= pm.total_wirelength + 1e-6

    def test_edge_lengths_cover_geometry(self):
        """Each edge is at least the geometric parent-child distance
        (equality unless snaked)."""
        rng = random.Random(17)
        sinks = {
            f"s{i}": Point(rng.uniform(0, 500), rng.uniform(0, 500))
            for i in range(12)
        }
        tree = synthesize_clock_tree_dme(sinks, TECH)

        def walk(node):
            for ch in node.children:
                geo = node.location.manhattan(ch.location)
                assert ch.edge_length >= geo - 1e-6
                walk(ch)

        walk(tree.root)

    def test_total_wirelength_matches_edges(self):
        rng = random.Random(19)
        sinks = {
            f"s{i}": Point(rng.uniform(0, 500), rng.uniform(0, 500))
            for i in range(10)
        }
        tree = synthesize_clock_tree_dme(sinks, TECH)
        edge_sum = [0.0]

        def walk(node):
            for ch in node.children:
                edge_sum[0] += ch.edge_length
                walk(ch)

        walk(tree.root)
        assert tree.total_wirelength == pytest.approx(edge_sum[0])

    def test_leaf_locations_preserved(self):
        sinks = {"a": Point(10.0, 20.0), "b": Point(200.0, 50.0)}
        tree = synthesize_clock_tree_dme(sinks, TECH)
        leaf_locs = {leaf.name: leaf.location for leaf in tree.root.sinks()}
        assert leaf_locs == sinks

    def test_missing_cap_rejected(self):
        topo = build_topology({"a": Point(0, 0), "b": Point(1, 0)})
        with pytest.raises(ClockTreeError):
            embed_zero_skew_dme(topo, {"a": 1.0}, TECH)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(2, 25), st.integers(0, 2**16))
    def test_dme_property(self, n, seed):
        rng = random.Random(seed)
        sinks = {
            f"s{i}": Point(rng.uniform(0, 800), rng.uniform(0, 800))
            for i in range(n)
        }
        pm = synthesize_clock_tree(sinks, TECH)
        dme = synthesize_clock_tree_dme(sinks, TECH)
        assert dme.total_wirelength <= pm.total_wirelength + 1e-6
        for delay in self._recomputed_sink_delays(dme).values():
            assert delay == pytest.approx(dme.source_delay, rel=1e-6, abs=1e-6)
        stats = path_length_stats(dme)
        assert stats.num_sinks == n
