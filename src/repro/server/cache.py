"""Shared digest-keyed result cache.

One process-wide LRU of response documents keyed by the request digest
(:meth:`repro.api.FlowRequest.digest` — sha256 over the normalized
``(circuit, FlowOptions, Technology)`` content).  Two identical requests
therefore share one entry no matter which client submitted them, and a
resubmit is served without recomputing anything.

Entries are the exact JSON documents produced by the first run; the
cache never rewrites them (the serve-time ``cached`` flag is applied to
a shallow copy by the service), so a cached response is byte-identical
to the originally computed one.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from ..obs import NULL_COLLECTOR, Collector


class ResultCache:
    """Thread-safe LRU cache of response documents by request digest."""

    def __init__(
        self,
        capacity: int = 256,
        collector: Collector = NULL_COLLECTOR,
    ) -> None:
        if capacity < 1:
            raise ValueError("ResultCache capacity must be >= 1")
        self.capacity = capacity
        self.collector = collector
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, digest: str) -> dict[str, Any] | None:
        """The cached response document, or None (counts a hit/miss).

        The returned document is the cache's own entry — treat it as
        immutable and copy before annotating.
        """
        with self._lock:
            doc = self._entries.get(digest)
            if doc is None:
                self.misses += 1
                self.collector.count("server.cache-misses")
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            self.collector.count("server.cache-hits")
            return doc

    def put(self, digest: str, doc: dict[str, Any]) -> None:
        """Store a response document, evicting the least recently used."""
        with self._lock:
            if digest in self._entries:
                self._entries.move_to_end(digest)
                self._entries[digest] = doc
                return
            self._entries[digest] = doc
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self.collector.count("server.cache-evictions")

    def stats(self) -> dict[str, float]:
        """Hit/miss/eviction counters plus the current hit rate."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "capacity": float(self.capacity),
                "size": float(len(self._entries)),
                "hits": float(self.hits),
                "misses": float(self.misses),
                "evictions": float(self.evictions),
                "hit_rate": self.hits / total if total else 0.0,
            }


__all__ = ["ResultCache"]
