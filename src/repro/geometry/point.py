"""Planar geometry primitives: points, bounding boxes, Manhattan metrics.

Physical design works almost exclusively in the rectilinear (Manhattan)
metric; every distance in the paper (tapping cost, wirelength, AFD) is a
Manhattan length in micrometers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the placement plane (um)."""

    x: float
    y: float

    def manhattan(self, other: "Point") -> float:
        """Manhattan (L1) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean(self, other: "Point") -> float:
        """Euclidean (L2) distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """A new point offset by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


def manhattan(ax: float, ay: float, bx: float, by: float) -> float:
    """Manhattan distance between two coordinate pairs."""
    return abs(ax - bx) + abs(ay - by)


@dataclass(frozen=True, slots=True)
class BBox:
    """An axis-aligned bounding box ``[xlo, xhi] x [ylo, yhi]``."""

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    def __post_init__(self) -> None:
        if self.xhi < self.xlo or self.yhi < self.ylo:
            raise ValueError(
                f"degenerate bbox: ({self.xlo}, {self.ylo}) .. ({self.xhi}, {self.yhi})"
            )

    @property
    def width(self) -> float:
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        return self.yhi - self.ylo

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point(0.5 * (self.xlo + self.xhi), 0.5 * (self.ylo + self.yhi))

    @property
    def half_perimeter(self) -> float:
        """Half-perimeter of the box — the HPWL of the points it spans."""
        return self.width + self.height

    def contains(self, p: Point, tol: float = 1e-9) -> bool:
        """Whether ``p`` lies inside the box (inclusive, with tolerance)."""
        return (
            self.xlo - tol <= p.x <= self.xhi + tol
            and self.ylo - tol <= p.y <= self.yhi + tol
        )

    def clamp(self, p: Point) -> Point:
        """The closest point to ``p`` inside the box."""
        return Point(
            min(max(p.x, self.xlo), self.xhi),
            min(max(p.y, self.ylo), self.yhi),
        )

    def expanded(self, margin: float) -> "BBox":
        """A box grown by ``margin`` on every side."""
        return BBox(
            self.xlo - margin, self.ylo - margin, self.xhi + margin, self.yhi + margin
        )

    def intersects(self, other: "BBox") -> bool:
        """Whether the two boxes overlap (touching counts)."""
        return not (
            self.xhi < other.xlo
            or other.xhi < self.xlo
            or self.yhi < other.ylo
            or other.yhi < self.ylo
        )

    @staticmethod
    def of_points(points: Iterable[Point]) -> "BBox":
        """The tight bounding box of a non-empty point collection."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot take bbox of an empty point set")
        xs = [p.x for p in pts]
        ys = [p.y for p in pts]
        return BBox(min(xs), min(ys), max(xs), max(ys))
