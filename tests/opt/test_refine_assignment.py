"""Warm-started assignment refinement vs the cold transportation solve.

:func:`repro.opt.refine_assignment` re-optimizes a feasible previous
assignment by canceling negative cycles in the column exchange graph;
"no negative cycle" is Klein's optimality certificate, so whenever it
returns an assignment at all, that assignment's objective must equal the
cold :func:`solve_transportation` optimum — regardless of how stale the
warm start is.  Unusable warm starts (infeasible, malformed) must come
back as ``None`` so the §V flow falls back to the cold solve.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opt import FORBIDDEN_COST, refine_assignment, solve_transportation
from repro.opt.mincostflow import _CYCLE_TOL


def _objective(cost: np.ndarray, assign: np.ndarray) -> float:
    return float(cost[np.arange(len(assign)), assign].sum())


def _round_robin(n_rows: int, caps: list[int]) -> np.ndarray:
    """A feasible but typically far-from-optimal warm start."""
    out = np.empty(n_rows, dtype=np.intp)
    j, used = 0, 0
    for i in range(n_rows):
        while used >= caps[j]:
            j, used = j + 1, 0
        out[i] = j
        used += 1
    return out


class TestRefineMatchesColdObjective:
    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_warm_start_reaches_cold_optimum(self, data):
        n_rows = data.draw(st.integers(1, 6))
        n_cols = data.draw(st.integers(1, 5))
        caps = [data.draw(st.integers(1, 3)) for _ in range(n_cols)]
        if sum(caps) < n_rows:
            caps[0] += n_rows - sum(caps)
        ints = st.integers(0, 9)
        cost = np.array(
            [[data.draw(ints) for _ in range(n_cols)] for _ in range(n_rows)],
            dtype=float,
        )
        cold = solve_transportation(cost, caps)
        warm = _round_robin(n_rows, caps)
        refined = refine_assignment(cost, caps, warm)
        assert refined is not None
        # Capacities respected and objective exactly optimal.
        counts = np.bincount(refined, minlength=n_cols)
        assert (counts <= np.array(caps)).all()
        assert _objective(cost, refined) == pytest.approx(_objective(cost, cold))

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_perturbed_costs_still_reach_optimum(self, data):
        """The flow's actual use: last iteration's assignment under this
        iteration's (moved-flip-flop) costs."""
        n_rows = data.draw(st.integers(2, 6))
        n_cols = data.draw(st.integers(2, 4))
        caps = [n_rows] * n_cols
        base = st.floats(0.0, 50.0, allow_nan=False)
        jitter = st.floats(-5.0, 5.0, allow_nan=False)
        old = np.array(
            [[data.draw(base) for _ in range(n_cols)] for _ in range(n_rows)]
        )
        drift = np.array(
            [[data.draw(jitter) for _ in range(n_cols)] for _ in range(n_rows)]
        )
        new = np.clip(old + drift, 0.0, None)
        warm = solve_transportation(old, caps)
        cold = solve_transportation(new, caps)
        refined = refine_assignment(new, caps, warm)
        assert refined is not None
        # Refinement ignores cycles shallower than _CYCLE_TOL (documented
        # float-noise gate), and the residual flow difference decomposes
        # into at most n_rows such cycles — that, not exact equality, is
        # the guarantee.
        assert _objective(new, refined) == pytest.approx(
            _objective(new, cold), abs=2.0 * n_rows * _CYCLE_TOL
        )

    def test_already_optimal_is_fixed_point(self):
        cost = np.array([[3.0, 1.0], [2.0, 4.0]])
        opt = solve_transportation(cost, [1, 2])
        refined = refine_assignment(cost, [1, 2], opt)
        assert refined is not None
        assert _objective(cost, refined) == _objective(cost, opt)

    def test_load_rebalancing_through_slack_node(self):
        """The optimum needs a net load shift between columns, which only
        the slack-node arcs of the exchange graph allow."""
        cost = np.array([[0.0, 9.0], [0.0, 9.0], [0.0, 9.0]])
        warm = np.array([0, 1, 1])  # two rows parked on the dear column
        refined = refine_assignment(cost, [3, 3], warm)
        assert refined is not None
        assert list(refined) == [0, 0, 0]


class TestUnusableWarmStarts:
    def test_wrong_shape_returns_none(self):
        cost = np.ones((3, 2))
        assert refine_assignment(cost, [2, 2], np.array([0, 1])) is None

    def test_out_of_range_column_returns_none(self):
        cost = np.ones((2, 2))
        assert refine_assignment(cost, [2, 2], np.array([0, 5])) is None

    def test_over_capacity_returns_none(self):
        cost = np.ones((3, 2))
        assert refine_assignment(cost, [1, 2], np.array([0, 0, 1])) is None

    def test_forbidden_chosen_arc_returns_none(self):
        cost = np.array([[FORBIDDEN_COST, 1.0], [1.0, 1.0]])
        assert refine_assignment(cost, [2, 2], np.array([0, 1])) is None

    def test_infinite_chosen_arc_returns_none(self):
        cost = np.array([[np.inf, 1.0]])
        assert refine_assignment(cost, [1, 1], np.array([0])) is None
