"""Static analysis of the Section VII skew difference-constraint system.

The setup/hold constraints ``t_left - t_right <= bound - M`` form a
constraint graph (edge ``right -> left`` with weight ``bound - M``); the
system is feasible at slack ``M`` iff that graph has no negative cycle.
:mod:`repro.opt.diffconstraints` answers the feasibility question for the
solver; this module answers the *diagnostic* question — it runs a full
Bellman-Ford with predecessor tracking so an infeasible system is reported
as the actual cycle of flip-flops whose constraints contradict each other,
not as a bare "infeasible" verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..constants import Technology
from ..opt.diffconstraints import RELAXATION_EPS, SkewConstraint
from ..timing import PathBounds, skew_constraints


@dataclass(frozen=True, slots=True)
class NegativeCycle:
    """A certificate of infeasibility: a cycle of total negative weight.

    ``members`` are the flip-flops on the cycle in traversal order;
    ``weight`` is the cycle's total constraint headroom (< 0).  Summing
    the constraints around the cycle yields ``0 <= weight``, which is
    absurd — hence no schedule can satisfy them simultaneously.
    """

    members: tuple[str, ...]
    weight: float

    def describe(self, limit: int = 6) -> str:
        if len(self.members) > limit:
            chain = " -> ".join(self.members[:limit]) + " -> ..."
        else:
            chain = " -> ".join(self.members + (self.members[0],))
        return f"{chain} (total headroom {self.weight:.3f} ps)"


class SkewConstraintGraph:
    """The difference-constraint graph of a set of skew constraints."""

    def __init__(self, constraints: Sequence[SkewConstraint]) -> None:
        self.constraints = tuple(constraints)
        nodes: dict[str, int] = {}
        for con in self.constraints:
            nodes.setdefault(con.right, len(nodes))
            nodes.setdefault(con.left, len(nodes))
        self._index = nodes
        self._names = list(nodes)
        # Edge arrays (right -> left), pre-sorted by target node so the
        # vectorized Bellman-Ford sweeps can segment-reduce per target.
        src = np.array([nodes[c.right] for c in self.constraints], dtype=np.intp)
        dst = np.array([nodes[c.left] for c in self.constraints], dtype=np.intp)
        bound = np.array([c.bound for c in self.constraints])
        coeff = np.array([c.slack_coeff for c in self.constraints])
        order = np.argsort(dst, kind="stable")
        self._src = src[order]
        self._dst = dst[order]
        self._bound = bound[order]
        self._coeff = coeff[order]
        self._targets, self._starts = np.unique(self._dst, return_index=True)
        n_edges = self._dst.size
        self._edge_ids = np.arange(n_edges, dtype=np.intp)
        self._seg_of_edge = (
            np.searchsorted(self._starts, self._edge_ids, side="right") - 1
        )

    @classmethod
    def from_pairs(
        cls,
        pairs: Mapping[tuple[str, str], PathBounds],
        period: float,
        tech: Technology,
    ) -> "SkewConstraintGraph":
        """Build from STA pair bounds via eqs. (6)-(7)."""
        return cls(skew_constraints(pairs, period, tech))

    @property
    def num_nodes(self) -> int:
        return len(self._names)

    def negative_cycle(
        self, slack: float = 0.0, tol: float = RELAXATION_EPS
    ) -> NegativeCycle | None:
        """The negative cycle at slack ``M``, or ``None`` when feasible.

        Full Bellman-Ford from a virtual source (distance 0 to every
        node).  If any edge still relaxes after ``n - 1`` passes, walking
        the predecessor chain ``n`` steps lands inside a negative cycle,
        which is then traced and returned.  ``tol`` defaults to the same
        relaxation epsilon as the SPFA feasibility oracle in
        :mod:`repro.opt.diffconstraints`, so the diagnostic verdict and
        the solver's verdict can never disagree on near-zero cycles.
        """
        n = len(self._names)
        if n == 0:
            return None
        w = self._bound - self._coeff * slack
        n_edges = w.size
        dist = np.zeros(n)
        pred = np.full(n, -1, dtype=np.intp)
        relaxed_node = -1
        for _ in range(n):
            cand = dist[self._src] + w
            mins = np.minimum.reduceat(cand, self._starts)
            improved = mins < dist[self._targets] - tol
            if not improved.any():
                return None  # converged: no negative cycle
            # First minimizing edge per improved target segment -> pred.
            full_min = mins[self._seg_of_edge]
            first = np.minimum.reduceat(
                np.where(cand <= full_min, self._edge_ids, n_edges), self._starts
            )
            hit = self._targets[improved]
            dist[hit] = mins[improved]
            pred[hit] = self._src[first[improved]]
            relaxed_node = int(hit[-1])
        # Walk back n steps to guarantee we are *on* the cycle.
        on_cycle = relaxed_node
        for _ in range(n):
            on_cycle = int(pred[on_cycle])
        cycle = [on_cycle]
        node = int(pred[on_cycle])
        while node != on_cycle:
            cycle.append(node)
            node = int(pred[node])
        cycle.reverse()
        members = tuple(self._names[i] for i in cycle)
        weight = self._cycle_weight(cycle, slack)
        return NegativeCycle(members=members, weight=weight)

    def _cycle_weight(self, cycle: list[int], slack: float) -> float:
        """Total weight around ``cycle`` using the cheapest edge per hop."""
        w = self._bound - self._coeff * slack
        best: dict[tuple[int, int], float] = {}
        for pos in range(w.size):
            key = (int(self._src[pos]), int(self._dst[pos]))
            if key not in best or w[pos] < best[key]:
                best[key] = float(w[pos])
        k = len(cycle)
        return sum(
            best.get((cycle[pos], cycle[(pos + 1) % k]), 0.0) for pos in range(k)
        )

    def feasible(self, slack: float = 0.0) -> bool:
        """Whether the system admits a schedule at slack ``M``."""
        return self.negative_cycle(slack) is None
