"""Tests for the levelized static timing analyzer."""

import pytest

from repro.constants import DEFAULT_TECHNOLOGY
from repro.errors import CombinationalCycleError, TimingError
from repro.geometry import Point
from repro.netlist import CellKind, Circuit
from repro.timing import GateDelayModel, SequentialTiming

TECH = DEFAULT_TECHNOLOGY


def pipeline_circuit() -> Circuit:
    """ff1 -> g1 -> g2 -> ff2, plus a direct short path ff1 -> ff2."""
    c = Circuit("pipe")
    c.add_input("clk_unused")
    c.add_dff("ff1", "g2")
    c.add_gate("g1", CellKind.NOT, ("ff1",))
    c.add_gate("g2", CellKind.NOT, ("g1",))
    c.add_dff("ff2", "g2")
    c.add_output("ff2")
    return c.validate()


def colocated(circuit: Circuit) -> dict[str, Point]:
    return {cell.name: Point(0.0, 0.0) for cell in circuit}


class TestSequentialPairs:
    def test_pipeline_pairs(self):
        c = pipeline_circuit()
        st = SequentialTiming(c, colocated(c), TECH)
        assert ("ff1", "ff2") in st.pairs
        # ff2's fanin g2 also feeds ff1 -> ff1 self pair via g1,g2 loop.
        assert ("ff1", "ff1") in st.pairs

    def test_delay_is_sum_of_stages(self):
        c = pipeline_circuit()
        st = SequentialTiming(c, colocated(c), TECH)
        model = GateDelayModel(TECH)
        bounds = st.bounds("ff1", "ff2")
        # With zero wirelength, path = clk2q(ff1) + d(g1) + d(g2); loads
        # are pin caps only.
        g_in = model.input_cap(CellKind.NOT)
        ff_in = model.input_cap(CellKind.DFF)
        clk2q = model.delay(CellKind.DFF, g_in)
        d_g1 = model.delay(CellKind.NOT, g_in)
        d_g2 = model.delay(CellKind.NOT, 2 * ff_in)  # feeds ff1 and ff2
        assert bounds.d_max == pytest.approx(clk2q + d_g1 + d_g2, rel=1e-9)
        assert bounds.d_min == pytest.approx(bounds.d_max)

    def test_min_max_differ_on_reconvergence(self):
        c = Circuit("reconv")
        c.add_dff("ff1", "g_and")
        c.add_gate("g_fast", CellKind.NOT, ("ff1",))
        c.add_gate("g_slow1", CellKind.XOR, ("ff1", "g_fast"))
        c.add_gate("g_and", CellKind.AND, ("g_fast", "g_slow1"))
        c.add_dff("ff2", "g_and")
        c.add_output("ff2")
        c.validate()
        st = SequentialTiming(c, colocated(c), TECH)
        bounds = st.bounds("ff1", "ff2")
        assert bounds.d_max > bounds.d_min

    def test_wirelength_increases_delay(self):
        c = pipeline_circuit()
        near = SequentialTiming(c, colocated(c), TECH)
        spread = {cell.name: Point(0.0, 0.0) for cell in c}
        spread["g1"] = Point(400.0, 0.0)
        far = SequentialTiming(c, spread, TECH)
        assert far.bounds("ff1", "ff2").d_max > near.bounds("ff1", "ff2").d_max

    def test_missing_positions_default_to_origin(self):
        c = pipeline_circuit()
        st = SequentialTiming(c, {}, TECH)
        assert st.bounds("ff1", "ff2").d_max > 0.0

    def test_unrelated_pair_raises(self):
        c = pipeline_circuit()
        st = SequentialTiming(c, colocated(c), TECH)
        with pytest.raises(TimingError):
            st.bounds("ff2", "ff1")  # no path ff2 -> ff1

    def test_max_delay_over_pairs(self):
        c = pipeline_circuit()
        st = SequentialTiming(c, colocated(c), TECH)
        assert st.max_delay == max(b.d_max for b in st.pairs.values())


class TestRobustness:
    def test_combinational_cycle_detected(self):
        c = Circuit("cyc")
        c.add_input("a")
        c.add_gate("g1", CellKind.AND, ("a", "g2"))
        c.add_gate("g2", CellKind.NOT, ("g1",))
        c.add_output("g2")
        c.validate()
        with pytest.raises(CombinationalCycleError):
            SequentialTiming(c, colocated(c), TECH)

    def test_po_paths_not_pairs(self):
        """Paths ending at primary outputs don't create pairs."""
        c = Circuit("po")
        c.add_dff("ff1", "g")
        c.add_gate("g", CellKind.NOT, ("ff1",))
        c.add_output("g")
        c.validate()
        st = SequentialTiming(c, colocated(c), TECH)
        assert ("ff1", "ff1") in st.pairs  # through g back to own D
        assert len(st.pairs) == 1

    def test_high_fanout_gets_buffer_tree_delay(self):
        c = Circuit("fanout")
        c.add_dff("ff_src", "g0")
        sinks = []
        for k in range(60):
            c.add_gate(f"g{k}", CellKind.NOT, ("ff_src",))
            sinks.append(f"g{k}")
        c.add_dff("ff_dst", "g1")
        c.add_output("ff_dst")
        c.validate()
        positions = {cell.name: Point(0.0, 0.0) for cell in c}
        st = SequentialTiming(c, positions, TECH)
        small = Circuit("small")
        small.add_dff("ff_src", "g0")
        small.add_gate("g0", CellKind.NOT, ("ff_src",))
        small.add_gate("g1", CellKind.NOT, ("ff_src",))
        small.add_dff("ff_dst", "g1")
        small.add_output("ff_dst")
        small.validate()
        st_small = SequentialTiming(
            small, {cell.name: Point(0.0, 0.0) for cell in small}, TECH
        )
        # 60-fanout net must be slower than 2-fanout, but bounded (tree).
        big = st.bounds("ff_src", "ff_dst").d_max
        lit = st_small.bounds("ff_src", "ff_dst").d_max
        assert big > lit
        assert big < lit + 350.0  # log-depth tree, not linear blowup


class TestDanglingQ:
    def test_dff_with_unconnected_q_launches_no_pairs(self):
        """A flip-flop whose Q drives nothing never enters the
        combinational DAG; the analyzer must skip it instead of raising
        a KeyError on the missing topological index."""
        c = Circuit("dangling_q")
        c.add_input("a")
        c.add_dff("ff_used", "g1")
        c.add_gate("g1", CellKind.NOT, ("a",))
        c.add_dff("ff_dead", "g1")  # Q of ff_dead goes nowhere
        c.add_dff("ff_dst", "ff_used")
        c.add_output("ff_dst")
        c.validate()
        st = SequentialTiming(c, {cell.name: Point(0.0, 0.0) for cell in c}, TECH)
        assert ("ff_used", "ff_dst") in st.pairs
        assert all(launch != "ff_dead" for launch, _ in st.pairs)

    def test_all_dangling_flipflops_yield_empty_pairs(self):
        c = Circuit("all_dangling")
        c.add_input("a")
        c.add_dff("ff1", "a")
        c.add_dff("ff2", "a")
        c.validate()
        st = SequentialTiming(c, {cell.name: Point(0.0, 0.0) for cell in c}, TECH)
        assert st.pairs == {}
        assert st.max_delay == 0.0
