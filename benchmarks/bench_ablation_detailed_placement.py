"""Ablation: detailed-placement refinement.

Measures what the greedy relocate/swap pass buys on signal wirelength and
what it costs in CPU; the timed kernel is one refinement pass.
"""

import pytest

from repro.constants import DEFAULT_TECHNOLOGY
from repro.core import signal_wirelength
from repro.experiments import format_table
from repro.netlist import generate_circuit, small_profile
from repro.placement import (
    QuadraticPlacer,
    legalize,
    refine_placement,
    region_for_circuit,
)

from conftest import record_artifact

_CIRCUIT = generate_circuit(small_profile(num_cells=300, num_flipflops=40, seed=66))


@pytest.fixture(scope="module")
def placement_setup():
    region = region_for_circuit(_CIRCUIT, DEFAULT_TECHNOLOGY)
    placer = QuadraticPlacer(_CIRCUIT, region)
    legal = legalize(placer.place(), region)
    positions = dict(placer.fixed_positions)
    positions.update(legal.positions)
    return region, positions


@pytest.fixture(scope="module")
def ablation_rows(placement_setup):
    region, positions = placement_setup
    result = refine_placement(_CIRCUIT, region, positions)
    rows = [
        {
            "stage": "legalized",
            "hpwl_um": result.hpwl_before,
            "moves": 0,
            "swaps": 0,
        },
        {
            "stage": "refined",
            "hpwl_um": result.hpwl_after,
            "moves": result.moves,
            "swaps": result.swaps,
        },
    ]
    record_artifact(
        "Ablation: detailed placement",
        format_table(rows, "Ablation - detailed-placement refinement"),
    )
    return rows


def test_bench_detailed_refinement(benchmark, placement_setup, ablation_rows):
    assert ablation_rows[1]["hpwl_um"] <= ablation_rows[0]["hpwl_um"]
    region, positions = placement_setup

    def refine():
        return refine_placement(_CIRCUIT, region, positions)

    result = benchmark.pedantic(refine, rounds=3, iterations=1)
    assert signal_wirelength(_CIRCUIT, result.positions) == pytest.approx(
        result.hpwl_after
    )
