"""Tests for traditional and cost-driven skew optimization (Section VII)."""

import pytest

from repro.constants import DEFAULT_TECHNOLOGY
from repro.core import (
    cost_driven_schedule,
    max_slack_schedule,
    ring_attractions,
    zero_skew_schedule,
)
from repro.errors import SkewOptimizationError
from repro.geometry import BBox, Point
from repro.rotary import RingArray, stub_delay
from repro.timing import PathBounds, validate_schedule

TECH = DEFAULT_TECHNOLOGY
T = 1000.0


def two_ff_pairs() -> dict:
    return {
        ("a", "b"): PathBounds(d_min=100.0, d_max=700.0),
        ("b", "a"): PathBounds(d_min=150.0, d_max=500.0),
    }


class TestMaxSlack:
    def test_lp_schedule_is_valid(self):
        pairs = two_ff_pairs()
        sched = max_slack_schedule(pairs, ["a", "b"], T, TECH)
        assert validate_schedule(sched.targets, pairs, T, TECH, slack=sched.slack - 1e-6) == []

    def test_slack_is_maximal(self):
        """Increasing the slack slightly must break some constraint."""
        pairs = two_ff_pairs()
        sched = max_slack_schedule(pairs, ["a", "b"], T, TECH)
        assert validate_schedule(
            sched.targets, pairs, T, TECH, slack=sched.slack + 1.0
        ) != []

    def test_lp_and_graph_backends_agree(self, tiny_timing, tiny_circuit):
        ffs = [ff.name for ff in tiny_circuit.flip_flops]
        lp = max_slack_schedule(tiny_timing.pairs, ffs, T, TECH, backend="lp")
        graph = max_slack_schedule(tiny_timing.pairs, ffs, T, TECH, backend="graph")
        assert lp.slack == pytest.approx(graph.slack, abs=0.01)
        assert validate_schedule(
            graph.targets, tiny_timing.pairs, T, TECH, slack=graph.slack - 0.01
        ) == []

    def test_no_flipflops_rejected(self):
        with pytest.raises(SkewOptimizationError):
            max_slack_schedule({}, [], T, TECH)

    def test_unknown_backend(self):
        with pytest.raises(SkewOptimizationError):
            max_slack_schedule({}, ["a"], T, TECH, backend="quantum")

    def test_acyclic_pairs_slack_capped(self):
        """Without cycles the slack is capped at one period, not infinite."""
        pairs = {("a", "b"): PathBounds(100.0, 300.0)}
        sched = max_slack_schedule(pairs, ["a", "b"], T, TECH)
        assert sched.slack <= T + 1e-6

    def test_zero_skew_reference(self):
        sched = zero_skew_schedule(["x", "y"])
        assert sched.targets == {"x": 0.0, "y": 0.0}
        assert sched.slack == 0.0

    def test_normalized_folds_into_period(self):
        sched = zero_skew_schedule(["x"])
        shifted = type(sched)(targets={"x": 2345.0}, slack=0.0)
        assert shifted.normalized(T).targets["x"] == pytest.approx(345.0)


class TestRingAttractions:
    @pytest.fixture()
    def array(self):
        return RingArray(BBox(0, 0, 400, 400), side=2, period=T)

    def test_attraction_geometry(self, array):
        positions = {"ff0": Point(100.0, 100.0)}
        atts = ring_attractions({"ff0": 0}, positions, {"ff0": 0.0}, array, TECH)
        att = atts["ff0"]
        ring = array[0]
        _, dist = ring.nearest_point(positions["ff0"])
        assert att.distance == pytest.approx(dist)
        assert att.stub_delay == pytest.approx(stub_delay(dist, TECH))
        assert att.achievable_delay == pytest.approx(
            att.delay_at_point + att.stub_delay
        )

    def test_phase_adjustment_near_current_target(self, array):
        """The chosen t_c lands within half a period of the target."""
        positions = {"ff0": Point(100.0, 100.0)}
        for target in (0.0, 400.0, 900.0, 1700.0, -300.0):
            atts = ring_attractions(
                {"ff0": 0}, positions, {"ff0": target}, array, TECH
            )
            assert abs(atts["ff0"].achievable_delay - target) <= T / 2 + 1e-6


class TestCostDriven:
    @pytest.fixture()
    def array(self):
        return RingArray(BBox(0, 0, 400, 400), side=2, period=T)

    def _schedule(self, array, mode, pairs, positions, targets, slack=0.0):
        ffs = list(positions)
        atts = ring_attractions(
            {ff: 0 for ff in ffs}, positions, targets, array, TECH
        )
        return cost_driven_schedule(
            atts, pairs, ffs, T, TECH, slack=slack, mode=mode
        )

    @pytest.mark.parametrize("mode", ["minmax", "weighted"])
    def test_pulls_targets_toward_achievable(self, array, mode):
        """Unconstrained flip-flops snap to their achievable delays."""
        positions = {"a": Point(100.0, 100.0), "b": Point(120.0, 90.0)}
        targets = {"a": 500.0, "b": 500.0}
        sched = self._schedule(array, mode, {}, positions, targets)
        atts = ring_attractions(
            {ff: 0 for ff in positions}, positions, targets, array, TECH
        )
        for ff in positions:
            assert sched.targets[ff] == pytest.approx(
                atts[ff].achievable_delay, abs=5.0
            )

    @pytest.mark.parametrize("mode", ["minmax", "weighted"])
    def test_respects_timing_constraints(self, array, mode):
        positions = {"a": Point(50.0, 50.0), "b": Point(350.0, 350.0)}
        targets = {"a": 0.0, "b": 0.0}
        pairs = two_ff_pairs()
        sched = self._schedule(array, mode, pairs, positions, targets, slack=10.0)
        assert validate_schedule(sched.targets, pairs, T, TECH, slack=10.0 - 1e-6) == []

    def test_bad_mode_rejected(self, array):
        with pytest.raises(SkewOptimizationError):
            self._schedule(array, "nope", {}, {"a": Point(0, 0)}, {"a": 0.0})

    def test_no_flipflops_rejected(self):
        with pytest.raises(SkewOptimizationError):
            cost_driven_schedule({}, {}, [], T, TECH)

    def test_weighted_prioritizes_far_flipflops(self, array):
        """With conflicting pulls, the far flip-flop's wish dominates."""
        near = Point(95.0, 100.0)  # ~5 um from ring 0's left edge? inside
        far = Point(200.0, 200.0)  # between rings
        positions = {"near": near, "far": far}
        targets = {"near": 100.0, "far": 100.0}
        # No timing pairs: just check the weighted objective runs and
        # produces finite targets.
        atts = ring_attractions(
            {ff: 0 for ff in positions}, positions, targets, array, TECH
        )
        sched = cost_driven_schedule(
            atts, {}, list(positions), T, TECH, mode="weighted"
        )
        assert all(abs(v) < 10 * T for v in sched.targets.values())
