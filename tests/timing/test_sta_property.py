"""Property tests cross-checking the STA against networkx reachability."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import DEFAULT_TECHNOLOGY
from repro.netlist import Circuit, generate_circuit, small_profile
from repro.placement import QuadraticPlacer, legalize, region_for_circuit
from repro.timing import SequentialTiming

TECH = DEFAULT_TECHNOLOGY


def reachable_pairs(circuit: Circuit) -> set[tuple[str, str]]:
    """Sequential adjacency via plain graph reachability (ground truth)."""
    g = nx.DiGraph(circuit.combinational_edges())
    ffs = [ff.name for ff in circuit.flip_flops]
    pairs = set()
    for src in ffs:
        if src not in g:
            continue
        for node in nx.descendants(g, src):
            if node.endswith("$D"):
                pairs.add((src, node[:-2]))
    return pairs


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_pairs_match_graph_reachability(seed):
    circuit = generate_circuit(
        small_profile(num_cells=150, num_flipflops=20, seed=seed)
    )
    timing = SequentialTiming(circuit, {}, TECH)
    assert set(timing.pairs.keys()) == reachable_pairs(circuit)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_dmin_le_dmax_and_positive(seed):
    circuit = generate_circuit(
        small_profile(num_cells=150, num_flipflops=20, seed=seed)
    )
    region = region_for_circuit(circuit, TECH)
    placer = QuadraticPlacer(circuit, region)
    legal = legalize(placer.place(), region)
    positions = dict(placer.fixed_positions)
    positions.update(legal.positions)
    timing = SequentialTiming(circuit, positions, TECH)
    assert timing.pairs  # generated circuits always close loops
    for bounds in timing.pairs.values():
        assert 0.0 < bounds.d_min <= bounds.d_max


def test_placement_only_changes_delays_not_pairs():
    circuit = generate_circuit(small_profile(num_cells=150, num_flipflops=20, seed=3))
    at_origin = SequentialTiming(circuit, {}, TECH)
    region = region_for_circuit(circuit, TECH)
    placer = QuadraticPlacer(circuit, region)
    legal = legalize(placer.place(), region)
    positions = dict(placer.fixed_positions)
    positions.update(legal.positions)
    placed = SequentialTiming(circuit, positions, TECH)
    assert set(at_origin.pairs) == set(placed.pairs)
    # Placed wires add delay on at least the majority of pairs.
    slower = sum(
        1
        for key in placed.pairs
        if placed.pairs[key].d_max >= at_origin.pairs[key].d_max
    )
    assert slower > 0.9 * len(placed.pairs)
