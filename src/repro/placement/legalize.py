"""Tetris-style legalization: snap a global placement onto rows and sites.

Cells are processed in x order; each is assigned the free site (searched
over nearby rows) minimizing its displacement.  All generated cells occupy
one site, so a sorted free-site list per row suffices.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Mapping

from ..errors import PlacementError
from ..geometry import Point
from .region import PlacementRegion


@dataclass(frozen=True, slots=True)
class LegalizationResult:
    """Legal positions plus displacement statistics."""

    positions: dict[str, Point]
    total_displacement: float
    max_displacement: float

    @property
    def mean_displacement(self) -> float:
        n = len(self.positions)
        return self.total_displacement / n if n else 0.0


def legalize(
    global_positions: Mapping[str, Point],
    region: PlacementRegion,
    row_search_radius: int = 8,
) -> LegalizationResult:
    """Legalize ``global_positions`` onto the region's row/site grid.

    Raises :class:`PlacementError` if the region cannot hold the cells.
    """
    names = list(global_positions)
    if len(names) > region.capacity_sites:
        raise PlacementError(
            f"{len(names)} cells exceed region capacity {region.capacity_sites}"
        )
    # Sorted free-site lists per row: a bisect per probed row replaces
    # the previous whole-row boolean scan (same candidates, same
    # right-site tie-break, so the packing is identical).
    free_sites: list[list[int]] = [
        list(range(region.sites_per_row)) for _ in range(region.num_rows)
    ]
    # Process in x order (classic Tetris) for deterministic packing.
    names.sort(key=lambda n: (global_positions[n].x, global_positions[n].y, n))
    out: dict[str, Point] = {}
    total_disp = 0.0
    max_disp = 0.0
    for name in names:
        p = global_positions[name]
        target_row = region.nearest_row(p.y)
        target_site = region.nearest_site(p.x)
        best: tuple[float, int, int] | None = None
        radius = row_search_radius
        while best is None:
            lo = max(0, target_row - radius)
            hi = min(region.num_rows - 1, target_row + radius)
            for row in range(lo, hi + 1):
                site = _nearest_free_site(free_sites[row], target_site)
                if site is None:
                    continue
                cost = abs(region.row_y(row) - p.y) + abs(
                    region.site_x(site) - p.x
                )
                if best is None or cost < best[0]:
                    best = (cost, row, site)
            if best is None:
                if lo == 0 and hi == region.num_rows - 1:
                    raise PlacementError("no free site found during legalization")
                radius *= 2
        _, row, site = best
        row_free = free_sites[row]
        del row_free[bisect_left(row_free, site)]
        q = Point(region.site_x(site), region.row_y(row))
        out[name] = q
        d = p.manhattan(q)
        total_disp += d
        max_disp = max(max_disp, d)
    return LegalizationResult(out, total_disp, max_disp)


def _nearest_free_site(free: list[int], target: int) -> int | None:
    """Free site nearest ``target`` in one row's sorted list, or ``None``.

    Ties go to the right-hand candidate, matching the original
    whole-row-bitmap implementation.
    """
    if not free:
        return None
    pos = bisect_left(free, target)
    candidates = []
    if pos < len(free):
        candidates.append(free[pos])
    if pos > 0:
        candidates.append(free[pos - 1])
    return min(candidates, key=lambda s: abs(s - target))
