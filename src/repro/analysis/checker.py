"""The checker driver: select rules, run them, aggregate a report.

:func:`run_checks` is the single entry point used by the CLI
(``repro check``), by the Fig. 3 flow's ``check_invariants`` hook, and by
tests.  Configuration lives in :class:`CheckConfig`: explicit enable /
disable lists and per-rule severity overrides, all validated against the
registry up front so typos fail fast with :class:`~repro.errors.CheckError`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..errors import CheckError
from .context import DesignContext
from .diagnostics import CheckReport, Diagnostic, Severity
from .rules import Rule, get_rule, registered_rules


@dataclass(frozen=True, kw_only=True)
class CheckConfig:
    """Which rules run, and at what severity.

    ``enabled`` restricts the run to exactly those codes (empty = all);
    ``disabled`` removes codes from whatever ``enabled`` selects;
    ``severity_overrides`` remaps a rule's default severity; ``fail_on``
    is the threshold :meth:`CheckReport.exit_code` uses.

    Keyword-only; :meth:`to_dict` / :meth:`from_dict` round-trip the
    configuration through plain JSON-serializable values, which is how
    the CLI and the API facade build it.
    """

    enabled: tuple[str, ...] = ()
    disabled: tuple[str, ...] = ()
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)
    fail_on: Severity = Severity.ERROR

    def __post_init__(self) -> None:
        for code in (*self.enabled, *self.disabled, *self.severity_overrides):
            get_rule(code)  # raises CheckError on unknown codes

    def replace(self, **changes: Any) -> "CheckConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        """All fields as a JSON-serializable dict."""
        return {
            "enabled": list(self.enabled),
            "disabled": list(self.disabled),
            "severity_overrides": {
                code: severity.name.lower()
                for code, severity in sorted(self.severity_overrides.items())
            },
            "fail_on": self.fail_on.name.lower(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CheckConfig":
        """Build a config from a dict, rejecting unknown field names."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise CheckError(
                f"unknown CheckConfig field(s): {', '.join(unknown)}"
            )
        overrides = {
            str(code): Severity.parse(str(level))
            for code, level in dict(data.get("severity_overrides", {})).items()
        }
        fail_on = data.get("fail_on", Severity.ERROR)
        return cls(
            enabled=tuple(data.get("enabled", ())),
            disabled=tuple(data.get("disabled", ())),
            severity_overrides=overrides,
            fail_on=(
                fail_on
                if isinstance(fail_on, Severity)
                else Severity.parse(str(fail_on))
            ),
        )

    def selected(self, rules: Sequence[Rule]) -> list[Rule]:
        """Apply enable/disable filtering to ``rules``."""
        chosen = [
            r
            for r in rules
            if (not self.enabled or r.code in self.enabled)
            and r.code not in self.disabled
        ]
        return chosen

    def severity_of(self, rule: Rule) -> Severity:
        return self.severity_overrides.get(rule.code, rule.default_severity)


def run_checks(
    ctx: DesignContext,
    config: CheckConfig | None = None,
    rules: Iterable[Rule] | None = None,
    cheap_only: bool = False,
) -> CheckReport:
    """Run every applicable rule against ``ctx`` and aggregate a report.

    Rules whose required layers are absent from the context are recorded
    in ``rules_skipped`` rather than failing.  With ``cheap_only`` set,
    only rules flagged ``cheap`` run — the subset the flow executes
    between Fig. 3 stages.
    """
    cfg = config if config is not None else CheckConfig()
    pool = tuple(rules) if rules is not None else registered_rules()
    findings: list[Diagnostic] = []
    ran: list[str] = []
    skipped: list[str] = []
    for rule in cfg.selected(pool):
        if cheap_only and not rule.cheap:
            continue
        if not rule.applicable(ctx):
            skipped.append(rule.code)
            continue
        severity = cfg.severity_of(rule)
        for diag in rule.check(ctx):
            if diag.severity is not severity:
                diag = dataclasses.replace(diag, severity=severity)
            findings.append(diag)
        ran.append(rule.code)
    findings.sort(key=lambda d: (-int(d.severity), d.code, str(d.location)))
    return CheckReport(
        design=ctx.name,
        findings=tuple(findings),
        rules_run=tuple(ran),
        rules_skipped=tuple(skipped),
    )


def parse_severity_overrides(specs: Iterable[str]) -> dict[str, Severity]:
    """Parse CLI ``CODE=LEVEL`` override strings (raises CheckError)."""
    overrides: dict[str, Severity] = {}
    for spec in specs:
        code, sep, level = spec.partition("=")
        if not sep or not code or not level:
            raise CheckError(
                f"bad severity override {spec!r}; expected CODE=LEVEL "
                "(e.g. RCK103=error)"
            )
        get_rule(code)
        overrides[code] = Severity.parse(level)
    return overrides
