"""Run the lint pass over files and directories.

The engine walks its input paths (directories are expanded to every
``*.py`` under them, **in sorted order** — the linter practices what it
preaches), parses each file, runs the
:class:`~repro.lint.visitor.DeterminismVisitor`, applies justified
pragma suppressions, and folds everything into one
:class:`~repro.lint.findings.LintReport`.

A file that fails to parse is a *usage* problem, not a lint finding:
the engine raises :class:`~repro.errors.CheckError` so the CLI exits 2,
matching the ``repro check`` contract for unreadable inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..errors import CheckError
from .findings import LintFinding, LintReport, Severity
from .pragmas import scan_pragmas
from .rules import registered_lint_rules, rule_by_code
from .visitor import collect_findings

__all__ = ["LintConfig", "lint_paths", "lint_source"]


@dataclass(frozen=True, slots=True)
class LintConfig:
    """Rule selection and failure threshold for one lint run."""

    #: Restrict the run to these codes (empty = all registered rules).
    enabled: tuple[str, ...] = ()
    #: Codes to skip entirely.
    disabled: tuple[str, ...] = ()
    #: Exit 1 when findings reach this severity.
    fail_on: Severity = Severity.ERROR
    severity_overrides: dict[str, Severity] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for code in (
            *self.enabled, *self.disabled, *self.severity_overrides
        ):
            rule_by_code(code)  # raises CheckError on unknown codes

    def active(self, code: str) -> bool:
        if code in self.disabled:
            return False
        if self.enabled:
            # Pragma-hygiene findings always apply: they guard the
            # suppression mechanism itself, not a selectable rule.
            return code in self.enabled or code.startswith("PRG")
        return True

    def leveled(self, finding: LintFinding) -> LintFinding:
        override = self.severity_overrides.get(finding.code)
        if override is None or override is finding.severity:
            return finding
        return LintFinding(
            code=finding.code,
            rule=finding.rule,
            severity=override,
            message=finding.message,
            path=finding.path,
            line=finding.line,
            column=finding.column,
            hint=finding.hint,
        )


def _expand(paths: Sequence[str | Path]) -> list[Path]:
    """Every Python file under ``paths``, sorted, without duplicates."""
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                seen.setdefault(file, None)
        elif path.is_file():
            seen.setdefault(path, None)
        else:
            raise CheckError(f"lint path does not exist: {path}")
    return sorted(seen)


def _lint_one(
    source: str, path: str, cfg: LintConfig
) -> tuple[list[LintFinding], list[str]]:
    """Findings after suppression, plus the codes actually suppressed."""
    try:
        raw = collect_findings(source, path)
    except SyntaxError as exc:
        raise CheckError(f"{path}: cannot parse: {exc.msg}") from exc
    suppressions, pragma_findings = scan_pragmas(source, path)
    kept: list[LintFinding] = []
    used: list[str] = []
    for finding in raw:
        pragma = suppressions.get(finding.line)
        if pragma is not None and finding.code in pragma.codes:
            used.append(finding.code)
            continue
        kept.append(finding)
    kept.extend(pragma_findings)
    kept.sort(key=lambda f: (f.line, f.column, f.code))
    return [cfg.leveled(f) for f in kept if cfg.active(f.code)], used


def lint_source(
    source: str, path: str = "<string>", config: LintConfig | None = None
) -> list[LintFinding]:
    """Lint one source string; returns suppression-applied findings."""
    findings, _ = _lint_one(source, path, config or LintConfig())
    return findings


def lint_paths(
    paths: Iterable[str | Path], config: LintConfig | None = None
) -> LintReport:
    """Lint every Python file under ``paths`` into one report."""
    cfg = config or LintConfig()
    files = _expand(list(paths))
    findings: list[LintFinding] = []
    suppressed: dict[str, list[str]] = {}
    checked: list[str] = []
    for file in files:
        rel = str(file)
        try:
            source = file.read_text()
        except OSError as exc:
            raise CheckError(f"cannot read {file}: {exc}") from exc
        file_findings, used = _lint_one(source, rel, cfg)
        findings.extend(file_findings)
        if used:
            suppressed[rel] = used
        checked.append(rel)
    rules_run = tuple(
        rule.code
        for rule in registered_lint_rules()
        if cfg.active(rule.code)
    )
    return LintReport(
        findings=tuple(findings),
        files_checked=tuple(checked),
        rules_run=rules_run,
        suppressed=suppressed,
    )
